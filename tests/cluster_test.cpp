// Tests for the multi-worker cluster extension.
#include <gtest/gtest.h>

#include <set>

#include "cluster/cluster.hpp"
#include "trace/workload.hpp"

namespace faasbatch::cluster {
namespace {

trace::Workload workload_of(std::size_t invocations, std::size_t functions,
                            std::uint64_t seed = 17) {
  trace::WorkloadSpec spec;
  spec.kind = trace::FunctionKind::kCpuIntensive;
  spec.invocations = invocations;
  spec.num_functions = functions;
  spec.hot_fraction = 0.5;  // spread load over several functions
  spec.hot_mass = 0.9;
  spec.seed = seed;
  return trace::synthesize_workload(spec);
}

TEST(ClusterTest, AllInvocationsCompleteOnEveryBalancer) {
  const auto workload = workload_of(200, 8);
  for (const auto balancer :
       {BalancerKind::kRoundRobin, BalancerKind::kLeastOutstanding,
        BalancerKind::kFunctionAffinity}) {
    ClusterSpec spec;
    spec.workers = 3;
    spec.balancer = balancer;
    const ClusterResult result = run_cluster_experiment(spec, workload);
    EXPECT_EQ(result.completed, 200u) << balancer_kind_name(balancer);
    std::size_t routed = 0;
    for (const auto& worker : result.workers) routed += worker.routed;
    EXPECT_EQ(routed, 200u) << balancer_kind_name(balancer);
  }
}

TEST(ClusterTest, SingleWorkerMatchesStandaloneExperiment) {
  const auto workload = workload_of(150, 6);
  ClusterSpec spec;
  spec.workers = 1;
  spec.balancer = BalancerKind::kRoundRobin;
  const ClusterResult cluster = run_cluster_experiment(spec, workload);

  const eval::ExperimentResult standalone =
      eval::run_experiment(spec.worker_spec, workload);
  EXPECT_EQ(cluster.completed, standalone.completed);
  EXPECT_EQ(cluster.total_containers(), standalone.containers_provisioned);
  EXPECT_EQ(cluster.makespan, standalone.makespan);
}

TEST(ClusterTest, RoundRobinBalancesRoutingExactly) {
  // Pins push semantics: under kPull even round-robin prefers a worker
  // already warm for the function, so exact 1/N splits hold only for the
  // bind-at-routing plane.
  const auto workload = workload_of(300, 8);
  ClusterSpec spec;
  spec.workers = 3;
  spec.mode = SchedulingMode::kPush;
  spec.balancer = BalancerKind::kRoundRobin;
  const ClusterResult result = run_cluster_experiment(spec, workload);
  for (const auto& worker : result.workers) EXPECT_EQ(worker.routed, 100u);
  EXPECT_DOUBLE_EQ(result.routing_imbalance(), 1.0);
}

TEST(ClusterTest, AffinityKeepsFunctionsTogether) {
  const auto workload = workload_of(300, 8);
  ClusterSpec spec;
  spec.workers = 4;
  spec.balancer = BalancerKind::kFunctionAffinity;
  const ClusterResult result = run_cluster_experiment(spec, workload);
  EXPECT_EQ(result.completed, 300u);
  // Affinity is deterministic: rerunning routes identically.
  const ClusterResult again = run_cluster_experiment(spec, workload);
  for (std::size_t w = 0; w < spec.workers; ++w) {
    EXPECT_EQ(result.workers[w].routed, again.workers[w].routed);
  }
}

TEST(ClusterTest, AffinityPreservesFaasBatchConsolidation) {
  // The headline cluster finding: spraying a function's burst across
  // workers splits FaaSBatch's groups and inflates container counts;
  // function affinity preserves the single-container-per-group design.
  const auto workload = workload_of(400, 8, 23);
  ClusterSpec affinity;
  affinity.workers = 4;
  affinity.mode = SchedulingMode::kPush;  // pins push routing semantics
  affinity.balancer = BalancerKind::kFunctionAffinity;
  affinity.worker_spec.scheduler = schedulers::SchedulerKind::kFaasBatch;
  const ClusterResult affinity_result = run_cluster_experiment(affinity, workload);

  ClusterSpec spray = affinity;
  spray.balancer = BalancerKind::kRoundRobin;
  const ClusterResult spray_result = run_cluster_experiment(spray, workload);

  EXPECT_LT(affinity_result.total_containers(), spray_result.total_containers());
}

TEST(ClusterTest, LeastOutstandingAvoidsHotWorker) {
  const auto workload = workload_of(200, 8);
  ClusterSpec spec;
  spec.workers = 4;
  spec.mode = SchedulingMode::kPush;  // pins push routing semantics
  spec.balancer = BalancerKind::kLeastOutstanding;
  const ClusterResult result = run_cluster_experiment(spec, workload);
  // No worker should be left idle while others overflow.
  for (const auto& worker : result.workers) EXPECT_GT(worker.routed, 0u);
  EXPECT_LT(result.routing_imbalance(), 2.0);
}

// --- Pull-based scheduling ------------------------------------------------

// One hot function receiving 90% of arrivals: the worst case for
// bind-at-routing affinity (one worker eats the hot key) and the
// motivating case for pull + steal.
trace::Workload skewed_workload(std::size_t invocations,
                                std::uint64_t seed = 31) {
  trace::WorkloadSpec spec;
  spec.kind = trace::FunctionKind::kCpuIntensive;
  spec.invocations = invocations;
  spec.num_functions = 10;
  spec.hot_fraction = 0.1;
  spec.hot_mass = 0.9;
  spec.seed = seed;
  return trace::synthesize_workload(spec);
}

ClusterSpec pull_spec(std::size_t workers) {
  ClusterSpec spec;
  spec.workers = workers;
  spec.mode = SchedulingMode::kPull;
  spec.pull.worker_capacity = 8;
  spec.pull.pull_batch = 16;
  spec.pull.steal.min_victim_backlog = 4;
  spec.pull.steal.steal_fraction = 0.5;
  spec.pull.steal.max_steal = 16;
  return spec;
}

double utilization_imbalance(const ClusterResult& result) {
  double peak = 0.0, total = 0.0;
  for (const WorkerResult& worker : result.workers) {
    peak = std::max(peak, worker.cpu_utilization);
    total += worker.cpu_utilization;
  }
  const double mean = total / static_cast<double>(result.workers.size());
  return mean > 0.0 ? peak / mean : 0.0;
}

TEST(ClusterPullTest, UnboundedPullSingleWorkerMatchesStandalone) {
  // The cluster-vs-single differential, pull edition: one worker, no
  // capacity bound — the pump binds each arrival inside its own arrival
  // event, replaying run_experiment's exact outcome sequence.
  const auto workload = workload_of(150, 6);
  ClusterSpec spec;
  spec.workers = 1;
  spec.mode = SchedulingMode::kPull;
  const ClusterResult cluster = run_cluster_experiment(spec, workload);

  const eval::ExperimentResult standalone =
      eval::run_experiment(spec.worker_spec, workload);
  EXPECT_EQ(cluster.completed, standalone.completed);
  EXPECT_EQ(cluster.total_containers(), standalone.containers_provisioned);
  EXPECT_EQ(cluster.makespan, standalone.makespan);
  EXPECT_EQ(cluster.transfer.pulled, 150u);
  EXPECT_EQ(cluster.transfer.steals, 0u);  // nobody to steal from
}

TEST(ClusterPullTest, BoundedPullSingleWorkerAccountsEverything) {
  // With a real capacity bound the single worker late-binds: outcomes
  // still all account, and everything arrives via pulls.
  const auto workload = workload_of(150, 6);
  ClusterSpec spec = pull_spec(1);
  const ClusterResult result = run_cluster_experiment(spec, workload);
  EXPECT_EQ(result.accounted, 150u);
  EXPECT_EQ(result.completed + result.failed + result.shed, 150u);
  EXPECT_EQ(result.transfer.pulled, 150u);
  EXPECT_EQ(result.transfer.steals, 0u);
}

TEST(ClusterPullTest, UnboundedPullMatchesPushOnColdAffinityRun) {
  // Fault-free, capacity-unbounded pull degenerates to warm-preferring
  // push: on an affinity cluster the warm worker IS the affine worker,
  // so both planes route identically.
  const auto workload = workload_of(300, 8);
  ClusterSpec push;
  push.workers = 4;
  push.mode = SchedulingMode::kPush;
  const ClusterResult push_result = run_cluster_experiment(push, workload);

  ClusterSpec pull = push;
  pull.mode = SchedulingMode::kPull;
  const ClusterResult pull_result = run_cluster_experiment(pull, workload);

  EXPECT_EQ(pull_result.completed, push_result.completed);
  EXPECT_EQ(pull_result.makespan, push_result.makespan);
  EXPECT_EQ(pull_result.total_containers(), push_result.total_containers());
  for (std::size_t w = 0; w < push.workers; ++w) {
    EXPECT_EQ(pull_result.workers[w].routed, push_result.workers[w].routed)
        << "worker " << w;
  }
}

TEST(ClusterPullTest, SkewedLoadStealsAndRebalances) {
  // The skew regression gate: 90% of arrivals on one function must
  // produce steals, and pull + steal must hold the max/mean worker
  // utilization ratio under a pinned bound that push affinity (hot key
  // pinned to one worker) cannot meet.
  const auto workload = skewed_workload(600);
  const ClusterSpec pull = pull_spec(4);
  const ClusterResult pull_result = run_cluster_experiment(pull, workload);
  EXPECT_EQ(pull_result.accounted, 600u);
  EXPECT_GT(pull_result.transfer.steals, 0u);
  EXPECT_GT(pull_result.transfer.stolen, 0u);

  ClusterSpec push = pull;
  push.mode = SchedulingMode::kPush;
  const ClusterResult push_result = run_cluster_experiment(push, workload);

  const double pull_ratio = utilization_imbalance(pull_result);
  const double push_ratio = utilization_imbalance(push_result);
  EXPECT_LT(pull_ratio, push_ratio);
  EXPECT_LT(pull_ratio, 2.0);  // pinned bound: balance can't regress
}

TEST(ClusterPullTest, PullRunsAreDeterministic) {
  const auto workload = skewed_workload(400, 7);
  const ClusterSpec spec = pull_spec(3);
  const ClusterResult a = run_cluster_experiment(spec, workload);
  const ClusterResult b = run_cluster_experiment(spec, workload);
  EXPECT_EQ(a.chaos_fingerprint, b.chaos_fingerprint);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.transfer.pulls, b.transfer.pulls);
  EXPECT_EQ(a.transfer.steals, b.transfer.steals);
  EXPECT_EQ(a.transfer.stolen, b.transfer.stolen);
  for (std::size_t w = 0; w < spec.workers; ++w) {
    EXPECT_EQ(a.workers[w].routed, b.workers[w].routed);
    EXPECT_EQ(a.workers[w].transfer.fingerprint(),
              b.workers[w].transfer.fingerprint());
  }
}

TEST(ClusterPullTest, SchedulingModeNames) {
  EXPECT_EQ(scheduling_mode_name(SchedulingMode::kPush), "push");
  EXPECT_EQ(scheduling_mode_name(SchedulingMode::kPull), "pull");
}

TEST(ClusterTest, Validation) {
  const auto workload = workload_of(10, 2);
  ClusterSpec spec;
  spec.workers = 0;
  EXPECT_THROW(run_cluster_experiment(spec, workload), std::invalid_argument);
}

TEST(ClusterTest, BalancerNames) {
  EXPECT_EQ(balancer_kind_name(BalancerKind::kRoundRobin), "round-robin");
  EXPECT_EQ(balancer_kind_name(BalancerKind::kLeastOutstanding), "least-outstanding");
  EXPECT_EQ(balancer_kind_name(BalancerKind::kFunctionAffinity), "function-affinity");
}

// Property sweep: every (balancer, scheduler) pair completes everything.
class ClusterSweepTest
    : public ::testing::TestWithParam<
          std::tuple<BalancerKind, schedulers::SchedulerKind>> {};

TEST_P(ClusterSweepTest, Completes) {
  const auto [balancer, scheduler] = GetParam();
  const auto workload = workload_of(120, 6);
  ClusterSpec spec;
  spec.workers = 2;
  spec.balancer = balancer;
  spec.worker_spec.scheduler = scheduler;
  if (scheduler == schedulers::SchedulerKind::kKraken) {
    spec.worker_spec.scheduler_options.kraken_default_slo_ms = 3000.0;
  }
  const ClusterResult result = run_cluster_experiment(spec, workload);
  EXPECT_EQ(result.completed, 120u);
  EXPECT_GT(result.makespan, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, ClusterSweepTest,
    ::testing::Combine(::testing::Values(BalancerKind::kRoundRobin,
                                         BalancerKind::kLeastOutstanding,
                                         BalancerKind::kFunctionAffinity),
                       ::testing::Values(schedulers::SchedulerKind::kVanilla,
                                         schedulers::SchedulerKind::kFaasBatch)));

}  // namespace
}  // namespace faasbatch::cluster
