// Tests for the blob inter-arrival-time model (paper Fig. 3).
#include <gtest/gtest.h>

#include "trace/blob_iat.hpp"

namespace faasbatch::trace {
namespace {

TEST(BlobIatTest, MixtureMassesMatchPaper) {
  BlobIatModel model;
  Rng rng(1);
  const auto samples = model.sample_many(40000, rng);
  // ~80% of re-accesses within 100 ms, ~90% within 1 s (paper Fig. 3).
  EXPECT_NEAR(samples.cdf_at(100.0), 0.80, 0.01);
  EXPECT_NEAR(samples.cdf_at(1000.0), 0.90, 0.01);
  EXPECT_DOUBLE_EQ(samples.cdf_at(1e9), 1.0);
}

TEST(BlobIatTest, SamplesArePositive) {
  BlobIatModel model;
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(model.sample_ms(rng), 0.0);
}

TEST(BlobIatTest, TailBoundedByCap) {
  BlobIatModel model({}, 2000.0);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) EXPECT_LE(model.sample_ms(rng), 2000.0);
}

TEST(BlobIatTest, Validation) {
  BlobIatMixture bad;
  bad.within_100ms = 0.8;
  bad.within_1s = 0.3;  // sums over 1
  EXPECT_THROW((void)BlobIatModel{bad}, std::invalid_argument);
  bad.within_100ms = -0.1;
  bad.within_1s = 0.1;
  EXPECT_THROW((void)BlobIatModel{bad}, std::invalid_argument);
  EXPECT_THROW((void)BlobIatModel({}, 500.0), std::invalid_argument);
}

TEST(BlobIatTest, DayVariantsDifferButStayValid) {
  BlobIatModel base;
  bool any_different = false;
  for (std::size_t day = 1; day <= 14; ++day) {
    const BlobIatModel variant = base.day_variant(day);
    const auto& m = variant.mixture();
    EXPECT_GE(m.within_100ms, 0.0);
    EXPECT_LE(m.within_100ms + m.within_1s, 1.0);
    if (std::abs(m.within_100ms - base.mixture().within_100ms) > 1e-6) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(BlobIatTest, DayVariantDeterministic) {
  BlobIatModel base;
  EXPECT_DOUBLE_EQ(base.day_variant(3).mixture().within_100ms,
                   base.day_variant(3).mixture().within_100ms);
}

// Property: the per-day curves stay within a few points of the combined
// curve, as in the paper's fourteen grey lines hugging the blue one.
class BlobDayTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BlobDayTest, DayCurveNearCombined) {
  BlobIatModel base;
  const BlobIatModel variant = base.day_variant(GetParam());
  Rng rng(100 + GetParam());
  const auto samples = variant.sample_many(20000, rng);
  EXPECT_NEAR(samples.cdf_at(100.0), 0.80, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Days, BlobDayTest, ::testing::Range<std::size_t>(1, 15));

}  // namespace
}  // namespace faasbatch::trace
