// Tests for the SFS per-core channel engine with doubling time slices.
#include <gtest/gtest.h>

#include <vector>

#include "schedulers/sfs.hpp"
#include "sim/simulator.hpp"

namespace faasbatch::schedulers {
namespace {

struct Fixture {
  sim::Simulator sim;
  runtime::RuntimeConfig config;
  runtime::Machine machine{sim, config};
};

TEST(SfsEngineTest, SingleTaskRunsToCompletion) {
  Fixture f;
  SfsEngine engine(f.machine, 4, 20 * kMillisecond);
  SimTime done = -1;
  engine.submit(0.1, [&] { done = f.sim.now(); });
  f.sim.run();
  EXPECT_NEAR(to_millis(done), 100.0, 2.0);
}

TEST(SfsEngineTest, TasksSpreadAcrossChannels) {
  Fixture f;
  SfsEngine engine(f.machine, 4, 20 * kMillisecond);
  for (int i = 0; i < 4; ++i) engine.submit(1.0, [] {});
  for (std::size_t c = 0; c < engine.channel_count(); ++c) {
    EXPECT_EQ(engine.channel_load(c), 1u);
  }
}

TEST(SfsEngineTest, ShortTaskPreemptsLongTaskOnSameChannel) {
  Fixture f;
  SfsEngine engine(f.machine, 1, 20 * kMillisecond);  // one core-channel
  SimTime long_done = 0, short_done = 0;
  engine.submit(1.0, [&] { long_done = f.sim.now(); });   // 1 s of work
  engine.submit(0.02, [&] { short_done = f.sim.now(); }); // one slice
  f.sim.run();
  // SFS's slicing lets the short function overtake the long one: the long
  // task yields after each (doubling) quantum.
  EXPECT_LT(short_done, long_done);
  // The short function finishes after at most two slices of the long one.
  EXPECT_LT(to_millis(short_done), 100.0);
  // The long task still completes, delayed beyond its solo time.
  EXPECT_GT(to_millis(long_done), 1000.0);
}

TEST(SfsEngineTest, QuantumDoublingBoundsSliceCount) {
  Fixture f;
  SfsEngine engine(f.machine, 1, 20 * kMillisecond);
  int completions = 0;
  // 10 s of work: slices 20, 40, 80, ... double, so the task needs only
  // ~log2(10s/20ms) ~ 9 slices rather than 500 fixed ones.
  engine.submit(10.0, [&] { ++completions; });
  f.sim.run();
  EXPECT_EQ(completions, 1);
  // Each slice is at least one simulator event; generously bound the
  // total event count to confirm geometric (not linear) slicing.
  EXPECT_LT(f.sim.processed_events(), 60u);
}

TEST(SfsEngineTest, ManyShortTasksAllComplete) {
  Fixture f;
  SfsEngine engine(f.machine, 8, 20 * kMillisecond);
  int done = 0;
  for (int i = 0; i < 100; ++i) {
    engine.submit(0.005, [&] { ++done; });
  }
  f.sim.run();
  EXPECT_EQ(done, 100);
}

TEST(SfsEngineTest, LeastLoadedChannelSelection) {
  Fixture f;
  SfsEngine engine(f.machine, 2, 20 * kMillisecond);
  engine.submit(1.0, [] {});
  engine.submit(1.0, [] {});
  engine.submit(1.0, [] {});  // must land on the (equally) least loaded
  const std::size_t load0 = engine.channel_load(0);
  const std::size_t load1 = engine.channel_load(1);
  EXPECT_EQ(load0 + load1, 3u);
  EXPECT_LE(load0 > load1 ? load0 - load1 : load1 - load0, 1u);
}

TEST(SfsEngineTest, AdaptiveQuantumTracksArrivalRate) {
  Fixture f;
  SfsEngine engine(f.machine, 2, 20 * kMillisecond, /*adaptive=*/true);
  // Before any IaT is observed, the fixed quantum is used.
  EXPECT_EQ(engine.current_initial_quantum(), 20 * kMillisecond);
  // Dense arrivals every 5 ms: quantum converges toward ~5 ms.
  for (int i = 0; i < 20; ++i) {
    f.sim.run_until(f.sim.now() + 5 * kMillisecond);
    engine.submit(0.001, [] {});
  }
  EXPECT_LT(engine.current_initial_quantum(), 10 * kMillisecond);
  EXPECT_GE(engine.current_initial_quantum(), kMillisecond);
  f.sim.run();
}

TEST(SfsEngineTest, AdaptiveQuantumClampedToBounds) {
  Fixture f;
  SfsEngine engine(f.machine, 1, 20 * kMillisecond, /*adaptive=*/true);
  // Extremely sparse arrivals (10 s apart): clamp at 200 ms.
  engine.submit(0.001, [] {});
  f.sim.run_until(10 * kSecond);
  engine.submit(0.001, [] {});
  EXPECT_EQ(engine.current_initial_quantum(), 200 * kMillisecond);
  f.sim.run();
}

TEST(SfsEngineTest, NonAdaptiveIgnoresArrivals) {
  Fixture f;
  SfsEngine engine(f.machine, 1, 30 * kMillisecond, /*adaptive=*/false);
  engine.submit(0.001, [] {});
  f.sim.run_until(kSecond);
  engine.submit(0.001, [] {});
  EXPECT_EQ(engine.current_initial_quantum(), 30 * kMillisecond);
  f.sim.run();
}

TEST(SfsEngineTest, ChannelsContendWithMachineLoad) {
  Fixture f;
  SfsEngine engine(f.machine, 1, 50 * kMillisecond);
  // Saturate the machine so the channel's core share shrinks.
  for (int i = 0; i < 64; ++i) {
    f.machine.cpu().submit(5.0, 1.0, sim::CpuScheduler::kNoGroup, [] {});
  }
  SimTime done = 0;
  engine.submit(0.1, [&] { done = f.sim.now(); });
  f.sim.run_until(kMinute);
  EXPECT_GT(to_millis(done), 150.0);  // stretched well past 100 ms
}

}  // namespace
}  // namespace faasbatch::schedulers
