// Tests for the platform dispatch pipeline.
#include <gtest/gtest.h>

#include <vector>

#include "schedulers/dispatch_loop.hpp"
#include "sim/simulator.hpp"

namespace faasbatch::schedulers {
namespace {

struct Fixture {
  sim::Simulator sim;
  runtime::RuntimeConfig config;
  runtime::Machine machine{sim, config};
};

TEST(DispatchLoopTest, RunsJobsInFifoOrder) {
  Fixture f;
  DispatchLoop loop(f.machine, 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.enqueue([] { return 0.01; }, [&order, i] { order.push_back(i); });
  }
  f.sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(loop.processed(), 5u);
}

TEST(DispatchLoopTest, SerialWorkerSerialisesCost) {
  Fixture f;
  DispatchLoop loop(f.machine, 1);
  SimTime last_done = 0;
  for (int i = 0; i < 4; ++i) {
    loop.enqueue([] { return 0.1; }, [&] { last_done = f.sim.now(); });
  }
  f.sim.run();
  // 4 x 100 ms serial on an idle machine.
  EXPECT_NEAR(to_millis(last_done), 400.0, 2.0);
}

TEST(DispatchLoopTest, ParallelWorkersOverlap) {
  Fixture f;
  DispatchLoop loop(f.machine, 4);
  SimTime last_done = 0;
  for (int i = 0; i < 4; ++i) {
    loop.enqueue([] { return 0.1; }, [&] { last_done = f.sim.now(); });
  }
  f.sim.run();
  // All four run concurrently on the 32-core machine.
  EXPECT_NEAR(to_millis(last_done), 100.0, 2.0);
}

TEST(DispatchLoopTest, CostEvaluatedAtJobStart) {
  Fixture f;
  DispatchLoop loop(f.machine, 1);
  bool flag = false;
  double second_cost = -1.0;
  loop.enqueue([] { return 0.05; }, [&] { flag = true; });
  loop.enqueue(
      [&] {
        // Runs after the first job completed, so it can see its effects.
        second_cost = flag ? 0.01 : 0.99;
        return second_cost;
      },
      [] {});
  f.sim.run();
  EXPECT_DOUBLE_EQ(second_cost, 0.01);
}

TEST(DispatchLoopTest, QueuedCountsActiveAndWaiting) {
  Fixture f;
  DispatchLoop loop(f.machine, 1);
  loop.enqueue([] { return 0.1; }, [] {});
  loop.enqueue([] { return 0.1; }, [] {});
  EXPECT_EQ(loop.queued(), 2u);
  f.sim.run();
  EXPECT_EQ(loop.queued(), 0u);
}

TEST(DispatchLoopTest, ZeroCostJobsStillAsync) {
  Fixture f;
  DispatchLoop loop(f.machine, 2);
  bool done = false;
  loop.enqueue(nullptr, [&] { done = true; });
  EXPECT_FALSE(done);
  f.sim.run();
  EXPECT_TRUE(done);
}

TEST(DispatchLoopTest, CallbackMayEnqueueMore) {
  Fixture f;
  DispatchLoop loop(f.machine, 1);
  int chain = 0;
  std::function<void()> enqueue_next = [&] {
    if (++chain < 3) loop.enqueue([] { return 0.01; }, enqueue_next);
  };
  loop.enqueue([] { return 0.01; }, enqueue_next);
  f.sim.run();
  EXPECT_EQ(chain, 3);
}

TEST(DispatchLoopTest, ParallelismValidation) {
  Fixture f;
  EXPECT_THROW(DispatchLoop(f.machine, 0), std::invalid_argument);
}

TEST(DispatchLoopTest, DispatchSlowsUnderMachineSaturation) {
  Fixture f;
  // Saturate all 32 cores with background work.
  for (int i = 0; i < 64; ++i) {
    f.machine.cpu().submit(10.0, 1.0, sim::CpuScheduler::kNoGroup, [] {});
  }
  DispatchLoop loop(f.machine, 1);
  SimTime done = 0;
  loop.enqueue([] { return 0.1; }, [&] { done = f.sim.now(); });
  f.sim.run_until(kMinute);
  // With 65 tasks on 32 cores the dispatch job gets ~0.49 cores.
  EXPECT_GT(to_millis(done), 180.0);
}

}  // namespace
}  // namespace faasbatch::schedulers
