// Tests for the processor-sharing CPU model: timing, fairness,
// per-task and per-group (cpuset) caps, and conservation properties.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/cpu.hpp"
#include "sim/simulator.hpp"

namespace faasbatch::sim {
namespace {

constexpr double kTimeTolerance = 0.002;  // seconds, covers integer rounding

double seconds(SimTime t) { return to_seconds(t); }

TEST(CpuTest, SingleTaskRunsAtItsCap) {
  Simulator sim;
  CpuScheduler cpu(sim, 8.0);
  SimTime done_at = -1;
  cpu.submit(2.0, 1.0, CpuScheduler::kNoGroup, [&] { done_at = sim.now(); });
  sim.run();
  // 2 core-seconds at 1 core: 2 s wall.
  EXPECT_NEAR(seconds(done_at), 2.0, kTimeTolerance);
}

TEST(CpuTest, TwoTasksOnOneCoreShare) {
  Simulator sim;
  CpuScheduler cpu(sim, 1.0);
  std::vector<double> finish;
  cpu.submit(1.0, 1.0, CpuScheduler::kNoGroup, [&] { finish.push_back(seconds(sim.now())); });
  cpu.submit(1.0, 1.0, CpuScheduler::kNoGroup, [&] { finish.push_back(seconds(sim.now())); });
  sim.run();
  ASSERT_EQ(finish.size(), 2u);
  // Equal work sharing one core: both finish together at 2 s.
  EXPECT_NEAR(finish[0], 2.0, kTimeTolerance);
  EXPECT_NEAR(finish[1], 2.0, kTimeTolerance);
}

TEST(CpuTest, ShortTaskFreesCapacityForLongTask) {
  Simulator sim;
  CpuScheduler cpu(sim, 1.0);
  double short_done = 0, long_done = 0;
  cpu.submit(0.5, 1.0, CpuScheduler::kNoGroup, [&] { short_done = seconds(sim.now()); });
  cpu.submit(1.5, 1.0, CpuScheduler::kNoGroup, [&] { long_done = seconds(sim.now()); });
  sim.run();
  // Shared until the short task drains (0.5 each at t=1), then the long
  // task runs alone: 1 + 1 = 2 s.
  EXPECT_NEAR(short_done, 1.0, kTimeTolerance);
  EXPECT_NEAR(long_done, 2.0, kTimeTolerance);
}

TEST(CpuTest, IndependentTasksOnBigMachineDoNotInterfere) {
  Simulator sim;
  CpuScheduler cpu(sim, 32.0);
  std::vector<double> finish(3, 0.0);
  for (int i = 0; i < 3; ++i) {
    cpu.submit(1.0, 1.0, CpuScheduler::kNoGroup,
               [&finish, i, &sim] { finish[static_cast<std::size_t>(i)] = seconds(sim.now()); });
  }
  sim.run();
  for (double f : finish) EXPECT_NEAR(f, 1.0, kTimeTolerance);
}

TEST(CpuTest, GroupCapLimitsAggregateRate) {
  Simulator sim;
  CpuScheduler cpu(sim, 32.0);
  const auto group = cpu.create_group(2.0);  // cpuset of 2 cores
  std::vector<double> finish;
  for (int i = 0; i < 4; ++i) {
    cpu.submit(1.0, 1.0, group, [&] { finish.push_back(seconds(sim.now())); });
  }
  sim.run();
  // 4 core-seconds through a 2-core cpuset: 2 s.
  ASSERT_EQ(finish.size(), 4u);
  for (double f : finish) EXPECT_NEAR(f, 2.0, kTimeTolerance);
}

TEST(CpuTest, TaskCapBelowOneCore) {
  Simulator sim;
  CpuScheduler cpu(sim, 8.0);
  double done = 0;
  cpu.submit(1.0, 0.5, CpuScheduler::kNoGroup, [&] { done = seconds(sim.now()); });
  sim.run();
  EXPECT_NEAR(done, 2.0, kTimeTolerance);
}

TEST(CpuTest, GroupGetsLeftoverCapacity) {
  Simulator sim;
  CpuScheduler cpu(sim, 32.0);
  const auto group = cpu.create_group(32.0);
  double group_done = 0, single_done = 0;
  // 100 threads in one container + 1 ungrouped task.
  int remaining = 100;
  for (int i = 0; i < 100; ++i) {
    cpu.submit(0.31, 1.0, group, [&] {
      if (--remaining == 0) group_done = seconds(sim.now());
    });
  }
  cpu.submit(1.0, 1.0, CpuScheduler::kNoGroup, [&] { single_done = seconds(sim.now()); });
  sim.run();
  // Max-min fair: the single task gets its full core; the group gets the
  // remaining 31 cores -> 31 core-seconds of work in ~1 s.
  EXPECT_NEAR(single_done, 1.0, kTimeTolerance);
  EXPECT_NEAR(group_done, 1.0, 0.05);
}

TEST(CpuTest, ZeroWorkCompletesImmediatelyButAsync) {
  Simulator sim;
  CpuScheduler cpu(sim, 1.0);
  bool done = false;
  cpu.submit(0.0, 1.0, CpuScheduler::kNoGroup, [&] { done = true; });
  EXPECT_FALSE(done);  // not reentrant
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), 0);
}

TEST(CpuTest, CancelPreventsCallback) {
  Simulator sim;
  CpuScheduler cpu(sim, 1.0);
  bool done = false;
  const auto task = cpu.submit(5.0, 1.0, CpuScheduler::kNoGroup, [&] { done = true; });
  EXPECT_TRUE(cpu.cancel(task));
  EXPECT_FALSE(cpu.cancel(task));
  sim.run();
  EXPECT_FALSE(done);
  EXPECT_EQ(cpu.active_tasks(), 0u);
}

TEST(CpuTest, CancelReallocatesRates) {
  Simulator sim;
  CpuScheduler cpu(sim, 1.0);
  double done = 0;
  const auto victim = cpu.submit(10.0, 1.0, CpuScheduler::kNoGroup, [] {});
  cpu.submit(1.0, 1.0, CpuScheduler::kNoGroup, [&] { done = seconds(sim.now()); });
  sim.schedule_at(kSecond, [&] { cpu.cancel(victim); });
  sim.run();
  // Shared (0.5 each) for 1 s, then full speed for remaining 0.5 work.
  EXPECT_NEAR(done, 1.5, kTimeTolerance);
}

TEST(CpuTest, BusyCoreSecondsIntegratesWork) {
  Simulator sim;
  CpuScheduler cpu(sim, 4.0);
  for (int i = 0; i < 3; ++i) {
    cpu.submit(2.0, 1.0, CpuScheduler::kNoGroup, [] {});
  }
  sim.run();
  EXPECT_NEAR(cpu.busy_core_seconds(), 6.0, 0.01);
}

TEST(CpuTest, TotalRateNeverExceedsMachine) {
  Simulator sim;
  CpuScheduler cpu(sim, 4.0);
  double max_rate = 0.0;
  cpu.set_rate_observer([&max_rate](SimTime, double rate) {
    max_rate = std::max(max_rate, rate);
  });
  for (int i = 0; i < 50; ++i) {
    cpu.submit(0.1 + 0.01 * i, 1.0, CpuScheduler::kNoGroup, [] {});
  }
  sim.run();
  EXPECT_LE(max_rate, 4.0 + 1e-9);
  EXPECT_NEAR(max_rate, 4.0, 1e-6);  // saturated while 4+ tasks live
}

TEST(CpuTest, GroupLifecycleErrors) {
  Simulator sim;
  CpuScheduler cpu(sim, 4.0);
  EXPECT_THROW(cpu.create_group(0.0), std::invalid_argument);
  const auto group = cpu.create_group(1.0);
  cpu.submit(1.0, 1.0, group, [] {});
  EXPECT_THROW(cpu.remove_group(group), std::logic_error);
  sim.run();
  EXPECT_NO_THROW(cpu.remove_group(group));
  EXPECT_THROW(cpu.remove_group(group), std::invalid_argument);
  EXPECT_THROW(cpu.submit(1.0, 1.0, group, [] {}), std::invalid_argument);
}

TEST(CpuTest, SubmitValidation) {
  Simulator sim;
  CpuScheduler cpu(sim, 4.0);
  EXPECT_THROW(cpu.submit(-1.0, 1.0, CpuScheduler::kNoGroup, [] {}),
               std::invalid_argument);
  EXPECT_THROW(cpu.submit(1.0, 0.0, CpuScheduler::kNoGroup, [] {}),
               std::invalid_argument);
  EXPECT_THROW(CpuScheduler(sim, 0.0), std::invalid_argument);
}

TEST(CpuTest, SetGroupCapTakesEffectMidRun) {
  Simulator sim;
  CpuScheduler cpu(sim, 8.0);
  const auto group = cpu.create_group(1.0);
  double done = 0;
  cpu.submit(2.0, 2.0, group, [&] { done = seconds(sim.now()); });
  sim.schedule_at(kSecond, [&] { cpu.set_group_cap(group, 2.0); });
  sim.run();
  // 1 s at 1 core (1.0 done), then 1.0 remaining at 2 cores: +0.5 s.
  EXPECT_NEAR(done, 1.5, kTimeTolerance);
}

TEST(CpuTest, CompletionCallbackCanResubmit) {
  Simulator sim;
  CpuScheduler cpu(sim, 1.0);
  int completions = 0;
  std::function<void()> resubmit = [&] {
    if (++completions < 3) cpu.submit(1.0, 1.0, CpuScheduler::kNoGroup, resubmit);
  };
  cpu.submit(1.0, 1.0, CpuScheduler::kNoGroup, resubmit);
  sim.run();
  EXPECT_EQ(completions, 3);
  EXPECT_NEAR(seconds(sim.now()), 3.0, 0.01);
}

// ---- Property sweeps -------------------------------------------------

struct FairnessCase {
  double cores;
  int tasks;
  double work;
};

class CpuFairnessTest : public ::testing::TestWithParam<FairnessCase> {};

TEST_P(CpuFairnessTest, WorkConservationAndSimultaneousFinish) {
  const auto param = GetParam();
  Simulator sim;
  CpuScheduler cpu(sim, param.cores);
  std::vector<double> finish;
  for (int i = 0; i < param.tasks; ++i) {
    cpu.submit(param.work, 1.0, CpuScheduler::kNoGroup,
               [&] { finish.push_back(seconds(sim.now())); });
  }
  sim.run();
  ASSERT_EQ(finish.size(), static_cast<std::size_t>(param.tasks));
  // Identical tasks under max-min fairness finish together, at
  // total_work / min(cores, tasks).
  const double expected =
      param.work * param.tasks / std::min(param.cores, static_cast<double>(param.tasks));
  for (double f : finish) EXPECT_NEAR(f, expected, 0.01 + 0.01 * expected);
  EXPECT_NEAR(cpu.busy_core_seconds(), param.work * param.tasks, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CpuFairnessTest,
    ::testing::Values(FairnessCase{1.0, 1, 0.5}, FairnessCase{1.0, 8, 0.25},
                      FairnessCase{4.0, 2, 1.0}, FairnessCase{4.0, 16, 0.125},
                      FairnessCase{32.0, 100, 0.05}, FairnessCase{32.0, 10, 1.0}));

struct GroupCase {
  double cores;
  double group_cap;
  int group_tasks;
  int free_tasks;
};

class CpuGroupCapTest : public ::testing::TestWithParam<GroupCase> {};

TEST_P(CpuGroupCapTest, GroupNeverExceedsItsCap) {
  const auto param = GetParam();
  Simulator sim;
  CpuScheduler cpu(sim, param.cores);
  const auto group = cpu.create_group(param.group_cap);
  std::vector<CpuScheduler::TaskId> group_tasks;
  for (int i = 0; i < param.group_tasks; ++i) {
    group_tasks.push_back(cpu.submit(10.0, 1.0, group, [] {}));
  }
  for (int i = 0; i < param.free_tasks; ++i) {
    cpu.submit(10.0, 1.0, CpuScheduler::kNoGroup, [] {});
  }
  // Inspect instantaneous rates before anything completes.
  double group_rate = 0.0;
  for (const auto task : group_tasks) group_rate += cpu.task_rate(task);
  EXPECT_LE(group_rate, param.group_cap + 1e-9);
  EXPECT_LE(cpu.total_rate(), param.cores + 1e-9);
  // Work conservation: if demand exceeds capacity, the machine is full.
  const double demand = std::min(param.group_cap, static_cast<double>(param.group_tasks)) +
                        param.free_tasks;
  EXPECT_NEAR(cpu.total_rate(), std::min(param.cores, demand), 1e-6);
  // Drain to exercise completion paths.
  sim.run();
  EXPECT_EQ(cpu.active_tasks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CpuGroupCapTest,
    ::testing::Values(GroupCase{32.0, 2.0, 8, 0}, GroupCase{32.0, 32.0, 64, 4},
                      GroupCase{4.0, 1.0, 3, 2}, GroupCase{8.0, 6.0, 6, 6},
                      GroupCase{2.0, 2.0, 1, 0}, GroupCase{16.0, 4.0, 2, 20}));

}  // namespace
}  // namespace faasbatch::sim
