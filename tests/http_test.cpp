// Tests for the HTTP substrate: message parsing/serialisation across
// split reads, the socket server/client pair, and error paths.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "http/client.hpp"
#include "http/message.hpp"
#include "http/server.hpp"

namespace faasbatch::http {
namespace {

TEST(HttpMessageTest, RequestSerializeParseRoundTrip) {
  Request request;
  request.method = "POST";
  request.target = "/invoke/fib?x=1";
  request.headers["Content-Type"] = "application/json";
  request.body = "{\"n\":24}";

  Parser parser;
  parser.feed(request.serialize());
  const auto parsed = parser.next_request();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, "POST");
  EXPECT_EQ(parsed->target, "/invoke/fib?x=1");
  EXPECT_EQ(parsed->body, "{\"n\":24}");
  EXPECT_EQ(parsed->headers.at("content-type"), "application/json");
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(HttpMessageTest, ResponseSerializeParseRoundTrip) {
  Response response = Response::make(404, "missing", "text/plain");
  Parser parser;
  parser.feed(response.serialize());
  const auto parsed = parser.next_response();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 404);
  EXPECT_EQ(parsed->reason, "Not Found");
  EXPECT_EQ(parsed->body, "missing");
}

TEST(HttpMessageTest, ParserHandlesSplitReads) {
  Request request;
  request.method = "POST";
  request.target = "/x";
  request.body = "0123456789";
  const std::string wire = request.serialize();
  // Feed one byte at a time; the request must appear exactly once the
  // final byte lands.
  Parser parser;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    parser.feed(std::string_view(&wire[i], 1));
    EXPECT_FALSE(parser.next_request().has_value()) << "at byte " << i;
  }
  parser.feed(std::string_view(&wire[wire.size() - 1], 1));
  const auto parsed = parser.next_request();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->body, "0123456789");
}

TEST(HttpMessageTest, ParserHandlesPipelinedRequests) {
  Request a, b;
  a.target = "/a";
  b.target = "/b";
  Parser parser;
  parser.feed(a.serialize() + b.serialize());
  EXPECT_EQ(parser.next_request()->target, "/a");
  EXPECT_EQ(parser.next_request()->target, "/b");
  EXPECT_FALSE(parser.next_request().has_value());
}

TEST(HttpMessageTest, HeaderNamesCaseInsensitive) {
  Parser parser;
  parser.feed("GET / HTTP/1.1\r\ncOnTeNt-LeNgTh: 2\r\n\r\nhi");
  const auto parsed = parser.next_request();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->body, "hi");
  EXPECT_EQ(parsed->headers.at("Content-Length"), "2");
}

TEST(HttpMessageTest, MalformedInputsThrow) {
  {
    Parser parser;
    parser.feed("NOT-A-REQUEST\r\n\r\n");
    EXPECT_THROW(parser.next_request(), std::runtime_error);
  }
  {
    Parser parser;
    parser.feed("GET / HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n");
    EXPECT_THROW(parser.next_request(), std::runtime_error);
  }
  {
    Parser parser;
    parser.feed("GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
    EXPECT_THROW(parser.next_request(), std::runtime_error);
  }
  {
    Parser parser;
    parser.feed("HTTP/1.1 xyz OK\r\n\r\n");
    EXPECT_THROW(parser.next_response(), std::runtime_error);
  }
}

TEST(HttpMessageTest, ReasonPhrases) {
  EXPECT_EQ(reason_phrase(200), "OK");
  EXPECT_EQ(reason_phrase(503), "Service Unavailable");
  EXPECT_EQ(reason_phrase(418), "?");
}

TEST(HttpServerTest, ServesEchoRequests) {
  Server server(0, [](const Request& request) {
    return Response::make(200, "echo:" + request.body);
  });
  ASSERT_GT(server.port(), 0);
  Client client(server.port());
  const Response response = client.post("/echo", "hello");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "echo:hello");
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(HttpServerTest, KeepAliveServesSequentialRequests) {
  Server server(0, [](const Request& request) {
    return Response::make(200, request.target);
  });
  Client client(server.port());
  for (int i = 0; i < 10; ++i) {
    const std::string target = "/r" + std::to_string(i);
    EXPECT_EQ(client.get(target).body, target);
  }
  EXPECT_EQ(server.requests_served(), 10u);
}

TEST(HttpServerTest, ConcurrentClients) {
  std::atomic<int> handled{0};
  Server server(0, [&handled](const Request&) {
    ++handled;
    return Response::make(200, "ok");
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([port = server.port()] {
      Client client(port);
      for (int i = 0; i < 25; ++i) {
        ASSERT_EQ(client.get("/x").status, 200);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(handled.load(), 100);
}

TEST(HttpServerTest, HandlerExceptionBecomes500) {
  Server server(0, [](const Request&) -> Response {
    throw std::runtime_error("kaboom");
  });
  Client client(server.port());
  const Response response = client.get("/boom");
  EXPECT_EQ(response.status, 500);
  EXPECT_NE(response.body.find("kaboom"), std::string::npos);
}

TEST(HttpServerTest, ConnectionCloseHonoured) {
  Server server(0, [](const Request&) { return Response::make(200, "bye"); });
  Client client(server.port());
  Request request;
  request.target = "/";
  request.headers["Connection"] = "close";
  EXPECT_EQ(client.send(request).body, "bye");
  // The server closed the connection; the next send must fail.
  EXPECT_THROW(client.get("/again"), std::runtime_error);
}

TEST(HttpServerTest, LargeBodyCrossesChunkBoundaries) {
  // A body far beyond the 4 KiB socket read chunk exercises incremental
  // parsing on the server and the client.
  Server server(0, [](const Request& request) {
    return Response::make(200, std::string(request.body.rbegin(),
                                           request.body.rend()));
  });
  Client client(server.port());
  std::string big;
  big.reserve(256 * 1024);
  for (int i = 0; big.size() < 256 * 1024; ++i) {
    big += "payload-" + std::to_string(i) + ";";
  }
  const Response response = client.post("/big", big);
  EXPECT_EQ(response.status, 200);
  ASSERT_EQ(response.body.size(), big.size());
  EXPECT_EQ(response.body, std::string(big.rbegin(), big.rend()));
}

TEST(HttpClientTest, ConnectFailureThrows) {
  // Port 1 on loopback is almost certainly closed.
  EXPECT_THROW(Client(1), std::runtime_error);
}

}  // namespace
}  // namespace faasbatch::http
