// OrderedMutex lock-order deadlock detection.
//
// Death tests induce an A->B / B->A inversion across two threads
// (sequenced so the program would NOT actually deadlock — the detector
// must flag the potential) and assert the process aborts with both lock
// chains in the report. OrderedMutex is used directly so the suite runs
// in every build configuration, not just FB_DEADLOCK_DETECT ones.

#include "common/ordered_mutex.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace faasbatch {
namespace {

class OrderedMutexTest : public ::testing::Test {
 protected:
  void SetUp() override { lockorder::reset_for_testing(); }
  void TearDown() override { lockorder::reset_for_testing(); }
};

// The inversion that must abort, extracted so death tests can run it in
// the forked child: thread 1 establishes A -> B, the caller then locks B
// and tries A.
void establish_ab_then_lock_ba(OrderedMutex& a, OrderedMutex& b) {
  std::thread t([&] {
    a.lock();
    b.lock();
    b.unlock();
    a.unlock();
  });
  t.join();
  b.lock();
  a.lock();  // cycle: the detector aborts here
  a.unlock();
  b.unlock();
}

TEST_F(OrderedMutexTest, ConsistentOrderIsAccepted) {
  OrderedMutex a("A");
  OrderedMutex b("B");
  for (int i = 0; i < 3; ++i) {
    a.lock();
    b.lock();
    b.unlock();
    a.unlock();
  }
  EXPECT_GE(lockorder::edge_count(), 1u);
}

TEST_F(OrderedMutexTest, DisjointLocksRecordNoEdges) {
  OrderedMutex a("A");
  OrderedMutex b("B");
  a.lock();
  a.unlock();
  b.lock();
  b.unlock();
  EXPECT_EQ(lockorder::edge_count(), 0u);
}

TEST_F(OrderedMutexTest, InversionAbortsWithBothChains) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  OrderedMutex a("pool.A");
  OrderedMutex b("pool.B");
  // The report must name the acquisition that closed the cycle and the
  // previously recorded conflicting chain.
  EXPECT_DEATH(establish_ab_then_lock_ba(a, b),
               "lock-order cycle.*acquiring \"pool.A\" while holding"
               ".*\"pool.B\""
               ".*recorded by thread.*\"pool.A\" \"pool.B\"");
}

TEST_F(OrderedMutexTest, ThreeLockCycleIsDetected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  OrderedMutex a("A");
  OrderedMutex b("B");
  OrderedMutex c("C");
  EXPECT_DEATH(
      {
        std::thread t1([&] {
          a.lock();
          b.lock();
          b.unlock();
          a.unlock();
        });
        t1.join();
        std::thread t2([&] {
          b.lock();
          c.lock();
          c.unlock();
          b.unlock();
        });
        t2.join();
        c.lock();
        a.lock();  // closes A -> B -> C -> A
      },
      "lock-order cycle");
}

TEST_F(OrderedMutexTest, SelfLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  OrderedMutex a("self");
  EXPECT_DEATH(
      {
        a.lock();
        a.lock();
      },
      "already holds");
}

TEST_F(OrderedMutexTest, DestructionForgetsOrdering) {
  OrderedMutex a("A");
  {
    OrderedMutex b("B");
    a.lock();
    b.lock();
    b.unlock();
    a.unlock();
    EXPECT_EQ(lockorder::edge_count(), 1u);
  }
  EXPECT_EQ(lockorder::edge_count(), 0u);
}

TEST_F(OrderedMutexTest, TryLockOrdersLaterBlockingAcquisitions) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  OrderedMutex a("A");
  OrderedMutex b("B");
  EXPECT_DEATH(
      {
        std::thread t([&] {
          ASSERT_TRUE(a.try_lock());
          b.lock();  // records A -> B even though A came from try_lock
          b.unlock();
          a.unlock();
        });
        t.join();
        b.lock();
        a.lock();
      },
      "lock-order cycle");
}

TEST_F(OrderedMutexTest, CondVarWaitReleasesHold) {
  // A cv wait drops the lock, so orders taken while waiting must not
  // conflict with the waiter's mutex.
  OrderedMutex a("A");
  std::condition_variable_any cv;
  bool ready = false;
  std::thread waiter([&] {
    std::unique_lock<OrderedMutex> lock(a);
    cv.wait(lock, [&] { return ready; });
  });
  OrderedMutex b("B");
  b.lock();
  a.lock();  // fine: nobody holds A while taking B
  ready = true;
  a.unlock();
  b.unlock();
  cv.notify_all();
  waiter.join();
}

#ifdef FB_DEADLOCK_DETECT
TEST_F(OrderedMutexTest, PlatformAliasesRouteThroughDetector) {
  Mutex m;
  set_mutex_name(m, "aliased");
  const std::size_t before = lockorder::edge_count();
  Mutex inner;
  m.lock();
  inner.lock();
  inner.unlock();
  m.unlock();
  EXPECT_EQ(lockorder::edge_count(), before + 1);
}
#endif

}  // namespace
}  // namespace faasbatch
