// Tests for the live platform's HTTP gateway.
#include <gtest/gtest.h>

#include <future>
#include <latch>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "http/client.hpp"
#include "live/http_gateway.hpp"

namespace faasbatch::live {
namespace {

LivePlatformOptions fast_options() {
  LivePlatformOptions options;
  options.policy = LivePolicy::kFaasBatch;
  options.window = std::chrono::milliseconds(10);
  options.container.threads = 2;
  options.container.cold_start_work_ms = 0.5;
  options.container.base_memory_bytes = 16 * kKiB;
  options.client_factory.creation_work_ms = 0.5;
  options.client_factory.client_buffer_bytes = 16 * kKiB;
  return options;
}

TEST(ParseTargetTest, SegmentsAndQuery) {
  const TargetParts parts = parse_target("/invoke/fib?x=1&y=two&flag");
  ASSERT_EQ(parts.segments.size(), 2u);
  EXPECT_EQ(parts.segments[0], "invoke");
  EXPECT_EQ(parts.segments[1], "fib");
  EXPECT_EQ(parts.query.at("x"), "1");
  EXPECT_EQ(parts.query.at("y"), "two");
  EXPECT_EQ(parts.query.at("flag"), "");
}

TEST(ParseTargetTest, RootAndTrailingSlash) {
  EXPECT_TRUE(parse_target("/").segments.empty());
  const TargetParts parts = parse_target("/a/b/");
  ASSERT_EQ(parts.segments.size(), 2u);
  EXPECT_EQ(parts.segments[1], "b");
}

class GatewayFixture : public ::testing::Test {
 protected:
  GatewayFixture() : platform_(fast_options()), gateway_(platform_, 0) {}

  LivePlatform platform_;
  HttpGateway gateway_;
};

TEST_F(GatewayFixture, HealthCheck) {
  http::Client client(gateway_.port());
  const auto response = client.get("/healthz");
  EXPECT_EQ(response.status, 200);
  const Json body = Json::parse(response.body);
  EXPECT_EQ(body.at("status").as_string(), "ok");
  EXPECT_TRUE(body.at("healthy").as_bool());
  EXPECT_TRUE(body.at("stalled").as_array().empty());
  // Every dispatch loop reports: the shards, the worker pool, and the
  // gateway's own accept loop.
  bool saw_gateway = false;
  for (const Json& source : body.at("sources").as_array()) {
    if (source.at("name").as_string() == "gateway") saw_gateway = true;
  }
  EXPECT_TRUE(saw_gateway);
}

TEST(GatewayHealthTest, WedgedShardTurnsHealthz503NamingTheShard) {
  // Same wedge as watchdog_test, observed through the HTTP surface: a
  // 10 s window with a 100 ms stall threshold, one request parked in a
  // shard, virtual time advanced past the threshold but short of the
  // window. /healthz must flip to 503 and name the stalled shard.
  VirtualClock clock;
  LivePlatformOptions options;
  options.policy = LivePolicy::kFaasBatch;
  options.clock = &clock;
  options.dispatch = DispatchMode::kSharded;
  options.shards = 4;
  options.window = std::chrono::milliseconds(10'000);
  options.stall_threshold = std::chrono::milliseconds(100);
  LivePlatform platform(options);
  HttpGateway gateway(platform, 0);
  platform.register_function("f", [](FunctionContext&) {});

  http::Client client(gateway.port());
  ASSERT_EQ(client.get("/healthz").status, 200);

  auto future = platform.invoke("f");
  std::string wedged;
  for (const auto& snap : platform.dispatch_stats().shard_stats) {
    if (snap.depth > 0) wedged = "shard/" + std::to_string(snap.shard);
  }
  ASSERT_FALSE(wedged.empty());

  clock.advance(std::chrono::milliseconds(200));
  const auto response = client.get("/healthz");
  EXPECT_EQ(response.status, 503);
  const Json body = Json::parse(response.body);
  EXPECT_EQ(body.at("status").as_string(), "stalled");
  EXPECT_FALSE(body.at("healthy").as_bool());
  ASSERT_EQ(body.at("stalled").as_array().size(), 1u);
  EXPECT_EQ(body.at("stalled").as_array()[0].as_string(), wedged);

  // While wedged, /stats reports the pending entry's age on that shard.
  const Json stats = Json::parse(client.get("/stats").body);
  bool saw_aged_shard = false;
  for (const Json& shard : stats.at("dispatch").at("shard_stats").as_array()) {
    if ("shard/" + std::to_string(shard.at("shard").as_int()) != wedged)
      continue;
    saw_aged_shard = true;
    EXPECT_EQ(shard.at("depth").as_int(), 1);
    EXPECT_NEAR(shard.at("oldest_age_ms").as_double(), 200.0, 1e-6);
  }
  EXPECT_TRUE(saw_aged_shard);

  // Liveness pacing, not a timing assumption: advance until the flush
  // thread has woken, drained the window, and resolved the future.
  for (int i = 0; i < 10000; ++i) {
    if (future.wait_for(std::chrono::seconds(0)) == std::future_status::ready)
      break;
    clock.advance(std::chrono::milliseconds(1000));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // fb-lint-allow(raw-clock)
  }
  future.get();
  EXPECT_EQ(client.get("/healthz").status, 200);
  platform.shutdown();
  platform.drain();
}

TEST_F(GatewayFixture, DebugVarsServesOneDiagnosticsPage) {
  http::Client client(gateway_.port());
  client.post("/functions/fib?type=fib&n=10", "");
  client.post("/invoke/fib", "");
  const auto response = client.get("/debug/vars");
  EXPECT_EQ(response.status, 200);
  const Json body = Json::parse(response.body);
  // One page, three subsystems: metrics snapshot, watchdog report,
  // flight-recorder status.
  EXPECT_TRUE(body.at("metrics").contains("counters"));
  EXPECT_TRUE(body.at("metrics").contains("quantiles"));
  EXPECT_TRUE(body.at("watchdog").at("healthy").as_bool());
  EXPECT_TRUE(body.at("flight").at("enabled").as_bool());
  EXPECT_GE(body.at("flight").at("incidents").as_int(), 0);
}

TEST_F(GatewayFixture, RegisterAndInvokeFib) {
  http::Client client(gateway_.port());
  EXPECT_EQ(client.post("/functions/fib?type=fib&n=15", "").status, 200);
  const auto response = client.post("/invoke/fib", "");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"total_ms\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"exec_ms\":"), std::string::npos);
}

TEST_F(GatewayFixture, RegisterAndInvokeIo) {
  http::Client client(gateway_.port());
  EXPECT_EQ(client.post("/functions/up?type=io&account=acct&payload=64", "").status,
            200);
  EXPECT_EQ(client.post("/invoke/up", "").status, 200);
  EXPECT_GT(platform_.store().object_count(), 0u);
}

TEST_F(GatewayFixture, InvokeUnknownFunctionIs404) {
  http::Client client(gateway_.port());
  EXPECT_EQ(client.post("/invoke/ghost", "").status, 404);
}

TEST_F(GatewayFixture, BadRegistrationIs400) {
  http::Client client(gateway_.port());
  EXPECT_EQ(client.post("/functions/x?type=nope", "").status, 400);
  EXPECT_EQ(client.post("/functions/x?type=fib&n=99", "").status, 400);
  EXPECT_EQ(client.post("/functions", "").status, 400);
}

TEST_F(GatewayFixture, MethodAndPathErrors) {
  http::Client client(gateway_.port());
  EXPECT_EQ(client.get("/invoke/x").status, 405);
  EXPECT_EQ(client.get("/nope").status, 404);
  EXPECT_EQ(client.get("/").status, 404);
}

TEST_F(GatewayFixture, StatsReflectActivity) {
  http::Client client(gateway_.port());
  client.post("/functions/fib?type=fib&n=10", "");
  client.post("/invoke/fib", "");
  const auto stats = client.get("/stats");
  EXPECT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"containers_created\":1"), std::string::npos);
  EXPECT_NE(stats.body.find("\"policy\":\"faasbatch\""), std::string::npos);
}

TEST_F(GatewayFixture, RegisterViaJsonBody) {
  http::Client client(gateway_.port());
  EXPECT_EQ(client.post("/functions/fib", R"({"type":"fib","n":12})").status, 200);
  EXPECT_EQ(client.post("/invoke/fib", "").status, 200);
  // Malformed JSON body is a 400, not a crash.
  EXPECT_EQ(client.post("/functions/x", "{not json").status, 400);
  EXPECT_EQ(client.post("/functions/x", "[1,2]").status, 400);
}

TEST_F(GatewayFixture, InvokePayloadReachesHandler) {
  http::Client client(gateway_.port());
  client.post("/functions/up", R"({"type":"io","account":"acct"})");
  EXPECT_EQ(client.post("/invoke/up", "custom-object-content").status, 200);
  // The payload became the stored object's content.
  bool found = false;
  for (int i = 0; i < 16 && !found; ++i) {
    const auto value = platform_.store().get("acct/obj-" + std::to_string(i));
    if (value && *value == "custom-object-content") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(GatewayFixture, InvokeReplyIsValidJson) {
  http::Client client(gateway_.port());
  client.post("/functions/fib?type=fib&n=10", "");
  const auto response = client.post("/invoke/fib", "");
  const Json reply = Json::parse(response.body);
  EXPECT_GE(reply.at("total_ms").as_double(), reply.at("exec_ms").as_double());
  EXPECT_GE(reply.at("queue_ms").as_double(), 0.0);
}

TEST_F(GatewayFixture, ConcurrentInvocationsThroughGateway) {
  {
    http::Client client(gateway_.port());
    client.post("/functions/fib?type=fib&n=12", "");
  }
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([this, &ok] {
      http::Client client(gateway_.port());
      for (int i = 0; i < 10; ++i) {
        if (client.post("/invoke/fib", "").status == 200) ++ok;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok.load(), 40);
  // Batched through FaaSBatch: far fewer containers than invocations.
  EXPECT_LE(platform_.containers_created(), 3u);
}

// Every error response carries {"error": {"code", "message"}} with a
// stable machine-readable code — clients branch on the code, not on
// prose. This is the regression suite for that contract.
TEST_F(GatewayFixture, ErrorBodiesAreStructuredWithStableCodes) {
  http::Client client(gateway_.port());
  const auto expect_code = [](const http::Response& response, int status,
                              const std::string& code) {
    EXPECT_EQ(response.status, status) << response.body;
    const Json body = Json::parse(response.body);
    const Json& error = body.at("error");
    EXPECT_EQ(error.at("code").as_string(), code);
    EXPECT_FALSE(error.at("message").as_string().empty());
  };
  expect_code(client.post("/invoke/ghost", ""), 404, "unknown_function");
  expect_code(client.get("/nope"), 404, "not_found");
  expect_code(client.get("/"), 404, "not_found");
  expect_code(client.get("/invoke/x"), 405, "method_not_allowed");
  expect_code(client.post("/invoke", ""), 400, "invalid_request");
  expect_code(client.post("/functions/x", "{not json"), 400, "invalid_request");
  expect_code(client.post("/functions/x?type=nope", ""), 400, "invalid_request");
  expect_code(client.post("/functions", ""), 400, "invalid_request");
  expect_code(client.post("/invoke/ghost?deadline_ms=abc", ""), 400,
              "invalid_request");
  expect_code(client.post("/invoke/ghost?deadline_ms=-5", ""), 400,
              "invalid_request");
}

TEST_F(GatewayFixture, DeadlineExpiredInvokeIs504) {
  // The fixture's dispatch window is 10 ms, so a 1 ms deadline always
  // expires by the time the window flushes: deterministic 504, and the
  // handler never runs.
  http::Client client(gateway_.port());
  ASSERT_EQ(client.post("/functions/fib?type=fib&n=15", "").status, 200);
  const auto response = client.post("/invoke/fib?deadline_ms=1", "");
  EXPECT_EQ(response.status, 504);
  const Json body = Json::parse(response.body);
  EXPECT_EQ(body.at("error").at("code").as_string(), "deadline_exceeded");
  // An un-deadlined invoke on the same platform still succeeds.
  EXPECT_EQ(client.post("/invoke/fib", "").status, 200);
}

TEST(GatewayOverloadTest, ShedsAboveInflightCapWithRetryAfter) {
  LivePlatform platform(fast_options());
  GatewayOptions options;
  options.max_inflight_invokes = 1;
  options.retry_after_seconds = 7;
  HttpGateway gateway(platform, options);

  // The handler proves the first invoke is in flight (latch), then holds
  // it there (gate) while the second request arrives — admission is
  // decided by synchronisation, not timing.
  std::latch started(1);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  platform.register_function("block", [&started, open](FunctionContext&) {
    started.count_down();
    open.wait();
  });

  std::thread first([&] {
    http::Client client(gateway.port());
    EXPECT_EQ(client.post("/invoke/block", "").status, 200);
  });
  started.wait();  // first request admitted and executing

  http::Client client(gateway.port());
  const auto shed = client.post("/invoke/block", "");
  EXPECT_EQ(shed.status, 503);
  EXPECT_EQ(shed.headers.at("Retry-After"), "7");
  const Json body = Json::parse(shed.body);
  EXPECT_EQ(body.at("error").at("code").as_string(), "overloaded");
  EXPECT_EQ(gateway.invokes_shed(), 1u);

  gate.set_value();
  first.join();
  // Slot released: the next invoke is admitted again.
  EXPECT_EQ(client.post("/invoke/block", "").status, 200);
}

TEST(GatewayOverloadTest, ShedStatusConfigurableTo429) {
  LivePlatform platform(fast_options());
  GatewayOptions options;
  options.max_inflight_invokes = 1;
  options.shed_status = 429;
  HttpGateway gateway(platform, options);

  std::latch started(1);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  platform.register_function("block", [&started, open](FunctionContext&) {
    started.count_down();
    open.wait();
  });
  std::thread first([&] {
    http::Client client(gateway.port());
    EXPECT_EQ(client.post("/invoke/block", "").status, 200);
  });
  started.wait();
  http::Client client(gateway.port());
  const auto shed = client.post("/invoke/block", "");
  EXPECT_EQ(shed.status, 429);
  EXPECT_EQ(Json::parse(shed.body).at("error").at("code").as_string(),
            "overloaded");
  gate.set_value();
  first.join();
}

TEST(GatewayOverloadTest, DrainingPlatformReturnsShuttingDown) {
  LivePlatform platform(fast_options());
  HttpGateway gateway(platform, 0);
  platform.register_function("fib", [](FunctionContext&) {});
  platform.shutdown();
  http::Client client(gateway.port());
  const auto response = client.post("/invoke/fib", "");
  EXPECT_EQ(response.status, 503);
  EXPECT_EQ(Json::parse(response.body).at("error").at("code").as_string(),
            "shutting_down");
}

TEST_F(GatewayFixture, MetricsEndpointServesPrometheusText) {
  http::Client client(gateway_.port());
  ASSERT_EQ(client.post("/functions/fib?type=fib&n=12", "").status, 200);
  ASSERT_EQ(client.post("/invoke/fib", "").status, 200);
  const auto response = client.get("/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.headers.at("Content-Type").find("text/plain"),
            std::string::npos);
  EXPECT_NE(response.body.find("# TYPE fb_live_requests_total counter"),
            std::string::npos);
  EXPECT_NE(response.body.find("fb_cold_starts_total"), std::string::npos);
  EXPECT_NE(response.body.find("fb_batch_size_bucket"), std::string::npos);
  // Pre-registered series appear even before their code paths run.
  EXPECT_NE(response.body.find("fb_mux_hits_total"), std::string::npos);
  EXPECT_NE(response.body.find("fb_mux_misses_total"), std::string::npos);
  // Latency quantiles: the platform-wide summaries and the per-function
  // series labelled with the invoked function.
  EXPECT_NE(response.body.find("# TYPE fb_live_exec_ms_quantiles summary"),
            std::string::npos);
  EXPECT_NE(response.body.find("fb_live_exec_ms_quantiles{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(response.body.find("fb_live_queue_ms_quantiles{quantile=\"0.999\"}"),
            std::string::npos);
  EXPECT_NE(response.body.find(
                "fb_live_exec_ms_quantiles{function=\"fib\",quantile=\"0.5\"}"),
            std::string::npos);
  // Per-shard pipeline gauges refreshed at scrape time.
  EXPECT_NE(response.body.find("fb_dispatch_shard_depth"), std::string::npos);
  EXPECT_NE(response.body.find("fb_dispatch_shard_oldest_age_ms"),
            std::string::npos);
}

TEST_F(GatewayFixture, TraceEndpointTogglesAndDrainsChromeJson) {
  http::Client client(gateway_.port());
  ASSERT_EQ(client.post("/functions/fib?type=fib&n=12", "").status, 200);
  ASSERT_EQ(client.get("/trace?enable=1").status, 200);
  ASSERT_EQ(client.post("/invoke/fib", "").status, 200);
  const auto response = client.get("/trace?enable=0");
  EXPECT_EQ(response.status, 200);
  const Json doc = Json::parse(response.body);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  bool saw_invocation = false;
  for (const Json& event : doc.at("traceEvents").as_array()) {
    if (event.at("name").as_string() == "invocation") saw_invocation = true;
  }
  EXPECT_TRUE(saw_invocation);
  // Drained and disabled: a fresh invocation adds nothing.
  ASSERT_EQ(client.post("/invoke/fib", "").status, 200);
  const Json empty = Json::parse(client.get("/trace").body);
  EXPECT_TRUE(empty.at("traceEvents").as_array().empty());
}

}  // namespace
}  // namespace faasbatch::live
