// Tests for the seeded workload fuzzer: seed determinism, seed
// independence, and bound/shape guarantees of the generated traces.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "testing/workload_fuzzer.hpp"

namespace faasbatch::testing {
namespace {

TEST(WorkloadFuzzerTest, SameSeedIsByteIdentical) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 0xDEADBEEFULL}) {
    const trace::Workload a = fuzz_workload(seed);
    const trace::Workload b = fuzz_workload(seed);
    ASSERT_EQ(a.functions.size(), b.functions.size());
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.functions.size(); ++i) {
      EXPECT_EQ(a.functions[i].name, b.functions[i].name);
      EXPECT_EQ(a.functions[i].kind, b.functions[i].kind);
      EXPECT_EQ(a.functions[i].duration_ms, b.functions[i].duration_ms);
      EXPECT_EQ(a.functions[i].fib_n, b.functions[i].fib_n);
      EXPECT_EQ(a.functions[i].cpu_limit_cores, b.functions[i].cpu_limit_cores);
      EXPECT_EQ(a.functions[i].client_args_hash, b.functions[i].client_args_hash);
    }
    for (std::size_t i = 0; i < a.events.size(); ++i) {
      EXPECT_EQ(a.events[i].arrival, b.events[i].arrival);
      EXPECT_EQ(a.events[i].function, b.events[i].function);
      EXPECT_EQ(a.events[i].duration_ms, b.events[i].duration_ms);
      EXPECT_EQ(a.events[i].fib_n, b.events[i].fib_n);
    }
    EXPECT_EQ(workload_fingerprint(a), workload_fingerprint(b));
  }
}

TEST(WorkloadFuzzerTest, DistinctSeedsGiveDistinctTraces) {
  std::set<std::uint64_t> fingerprints;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    fingerprints.insert(workload_fingerprint(fuzz_workload(seed)));
  }
  // Every seed produced a different trace.
  EXPECT_EQ(fingerprints.size(), 50u);
}

TEST(WorkloadFuzzerTest, RespectsConfiguredBounds) {
  FuzzerOptions options;
  options.min_invocations = 30;
  options.max_invocations = 90;
  options.min_functions = 3;
  options.max_functions = 5;
  options.horizon = 10 * kSecond;
  options.max_duration_ms = 500.0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const trace::Workload workload = fuzz_workload(seed, options);
    EXPECT_GE(workload.events.size(), options.min_invocations);
    EXPECT_LE(workload.events.size(), options.max_invocations);
    EXPECT_GE(workload.functions.size(), options.min_functions);
    EXPECT_LE(workload.functions.size(), options.max_functions);
    EXPECT_TRUE(std::is_sorted(
        workload.events.begin(), workload.events.end(),
        [](const trace::TraceEvent& a, const trace::TraceEvent& b) {
          return a.arrival < b.arrival;
        }));
    for (const trace::TraceEvent& event : workload.events) {
      EXPECT_GE(event.arrival, 0);
      EXPECT_LT(event.arrival, options.horizon);
      EXPECT_GT(event.duration_ms, 0.0);
      EXPECT_LE(event.duration_ms, options.max_duration_ms);
      EXPECT_LT(event.function, workload.functions.size());
    }
    for (const trace::FunctionProfile& profile : workload.functions) {
      EXPECT_GT(profile.duration_ms, 0.0);
      EXPECT_LE(profile.duration_ms, options.max_duration_ms);
      if (profile.kind == trace::FunctionKind::kIo) {
        EXPECT_NE(profile.client_args_hash, 0u);
      } else {
        EXPECT_GE(profile.fib_n, 1);
      }
    }
  }
}

TEST(WorkloadFuzzerTest, GeneratesAdversarialShapes) {
  // Across a seed range the fuzzer must actually produce the shapes it
  // promises: mixed kinds, simultaneous arrivals, and window-boundary
  // arrivals.
  bool saw_mixed_kinds = false;
  bool saw_simultaneous = false;
  bool saw_window_boundary = false;
  FuzzerOptions options;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const trace::Workload workload = fuzz_workload(seed, options);
    bool any_cpu = false;
    bool any_io = false;
    for (const auto& profile : workload.functions) {
      (profile.kind == trace::FunctionKind::kIo ? any_io : any_cpu) = true;
    }
    saw_mixed_kinds = saw_mixed_kinds || (any_cpu && any_io);
    for (std::size_t i = 1; i < workload.events.size(); ++i) {
      if (workload.events[i].arrival == workload.events[i - 1].arrival) {
        saw_simultaneous = true;
      }
    }
    for (const auto& event : workload.events) {
      const SimDuration offset = event.arrival % options.dispatch_window;
      if (event.arrival > 0 &&
          (offset <= kMillisecond || offset >= options.dispatch_window - kMillisecond)) {
        saw_window_boundary = true;
      }
    }
  }
  EXPECT_TRUE(saw_mixed_kinds);
  EXPECT_TRUE(saw_simultaneous);
  EXPECT_TRUE(saw_window_boundary);
}

TEST(WorkloadFuzzerTest, RejectsInconsistentOptions) {
  FuzzerOptions bad;
  bad.min_invocations = 10;
  bad.max_invocations = 5;
  EXPECT_THROW(fuzz_workload(1, bad), std::invalid_argument);
  FuzzerOptions zero_functions;
  zero_functions.min_functions = 0;
  EXPECT_THROW(fuzz_workload(1, zero_functions), std::invalid_argument);
}

}  // namespace
}  // namespace faasbatch::testing
