// Tests for the Kraken baseline: slack batch sizing and serial queuing.
#include <gtest/gtest.h>

#include "eval/experiment.hpp"
#include "schedulers/kraken.hpp"

namespace faasbatch::schedulers {
namespace {

TEST(KrakenBatchSizeTest, FloorOfSlackRatio) {
  EXPECT_EQ(KrakenScheduler::batch_size_for(1000.0, 100.0), 10u);
  EXPECT_EQ(KrakenScheduler::batch_size_for(1000.0, 300.0), 3u);
  EXPECT_EQ(KrakenScheduler::batch_size_for(999.0, 1000.0), 1u);  // at least 1
  EXPECT_EQ(KrakenScheduler::batch_size_for(1000.0, 0.0), 1u);
  EXPECT_EQ(KrakenScheduler::batch_size_for(0.0, 100.0), 1u);
}

trace::Workload burst_workload(double duration_ms, std::size_t count) {
  trace::Workload workload;
  workload.kind = trace::FunctionKind::kCpuIntensive;
  trace::FunctionProfile profile;
  profile.id = 0;
  profile.name = "f";
  profile.kind = trace::FunctionKind::kCpuIntensive;
  profile.duration_ms = duration_ms;
  workload.functions.push_back(profile);
  for (std::size_t i = 0; i < count; ++i) {
    workload.events.push_back(
        trace::TraceEvent{static_cast<SimTime>(i), 0, duration_ms, 25});
  }
  workload.horizon = kMinute;
  return workload;
}

TEST(KrakenIntegrationTest, SerialBatchesProduceQueuing) {
  // 12 concurrent invocations of a 100 ms function with a 300 ms SLO:
  // batch size 3 -> 4 containers, with within-container queuing.
  const trace::Workload workload = burst_workload(100.0, 12);
  eval::ExperimentSpec spec;
  spec.scheduler = SchedulerKind::kKraken;
  spec.scheduler_options.kraken_slo_ms[0] = 300.0;
  const auto result = eval::run_experiment(spec, workload);
  EXPECT_EQ(result.completed, 12u);
  EXPECT_EQ(result.containers_provisioned, 4u);
  // Two of each batch's three invocations queue behind the first.
  EXPECT_GT(result.latency.queuing().percentile(0.9), 0.0);
  EXPECT_GT(result.latency.exec_plus_queue().percentile(0.9),
            result.latency.execution().percentile(0.9));
}

TEST(KrakenIntegrationTest, TightSloMeansContainerPerInvocation) {
  const trace::Workload workload = burst_workload(100.0, 8);
  eval::ExperimentSpec spec;
  spec.scheduler = SchedulerKind::kKraken;
  spec.scheduler_options.kraken_slo_ms[0] = 100.0;  // no slack at all
  const auto result = eval::run_experiment(spec, workload);
  EXPECT_EQ(result.containers_provisioned, 8u);
  EXPECT_DOUBLE_EQ(result.latency.queuing().percentile(1.0), 0.0);
}

TEST(KrakenIntegrationTest, LooseSloMeansOneContainer) {
  const trace::Workload workload = burst_workload(10.0, 8);
  eval::ExperimentSpec spec;
  spec.scheduler = SchedulerKind::kKraken;
  spec.scheduler_options.kraken_slo_ms[0] = 10000.0;
  const auto result = eval::run_experiment(spec, workload);
  EXPECT_EQ(result.containers_provisioned, 1u);
}

TEST(KrakenIntegrationTest, DefaultSloUsedWhenUnmapped) {
  const trace::Workload workload = burst_workload(100.0, 4);
  eval::ExperimentSpec spec;
  spec.scheduler = SchedulerKind::kKraken;
  spec.scheduler_options.kraken_default_slo_ms = 400.0;  // batch = 4
  const auto result = eval::run_experiment(spec, workload);
  EXPECT_EQ(result.containers_provisioned, 1u);
}

TEST(KrakenIntegrationTest, QueuingGrowsWithBatchDepth) {
  const trace::Workload workload = burst_workload(100.0, 10);
  eval::ExperimentSpec spec;
  spec.scheduler = SchedulerKind::kKraken;
  spec.scheduler_options.kraken_slo_ms[0] = 1000.0;  // batch = 10, 1 container
  const auto result = eval::run_experiment(spec, workload);
  EXPECT_EQ(result.containers_provisioned, 1u);
  // The last invocation queues behind nine 100 ms executions.
  EXPECT_NEAR(result.latency.queuing().percentile(1.0), 900.0, 30.0);
}

}  // namespace
}  // namespace faasbatch::schedulers
