// Property and stress tests for the lock-free MPSC ring underlying the
// sharded dispatch pipeline (src/live/dispatch/mpsc_ring.hpp).
//
// The stress tests use the repo's gate/latch idiom — producers rendezvous
// at a latch so they hammer the ring genuinely concurrently — and never
// sleep, so 20 back-to-back TSan runs stay fast and deterministic enough
// to converge. CI runs this binary in the tsan job's x20 loop.

#include "live/dispatch/mpsc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <latch>
#include <map>
#include <thread>
#include <vector>

namespace faasbatch::live::dispatch {
namespace {

TEST(NextPow2Test, RoundsUp) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(8), 8u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(MpscRingTest, PushPopRoundTripInOrder) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) {
    int v = i;
    EXPECT_TRUE(ring.try_push(v));
  }
  EXPECT_EQ(ring.size_approx(), 8u);
  for (int i = 0; i < 8; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty_approx());
}

TEST(MpscRingTest, FullRingRejectsAndLeavesItemIntact) {
  MpscRing<std::string> ring(2);
  std::string a = "a", b = "b", c = "c";
  EXPECT_TRUE(ring.try_push(a));
  EXPECT_TRUE(ring.try_push(b));
  // The rejected item must survive so the caller can shed or overflow it.
  EXPECT_FALSE(ring.try_push(c));
  EXPECT_EQ(c, "c");
  std::string out;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, "a");
  EXPECT_TRUE(ring.try_push(c));
}

TEST(MpscRingTest, PopOnEmptyFails) {
  MpscRing<int> ring(4);
  int out = 42;
  EXPECT_FALSE(ring.try_pop(out));
  int v = 7;
  EXPECT_TRUE(ring.try_push(v));
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(MpscRingTest, WrapsAroundManyTimes) {
  MpscRing<std::uint64_t> ring(4);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    std::uint64_t v = i;
    ASSERT_TRUE(ring.try_push(v));
    std::uint64_t out = 0;
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, i);
  }
}

// Encodes (producer, sequence) so the consumer can verify per-producer
// FIFO order after a fully concurrent run.
struct Tagged {
  std::uint32_t producer = 0;
  std::uint32_t seq = 0;
};

// Multi-producer FIFO-per-producer: items from one producer may
// interleave with others', but never reorder among themselves.
TEST(MpscRingStressTest, PerProducerFifoOrderSurvivesConcurrency) {
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint32_t kPerProducer = 2000;
  MpscRing<Tagged> ring(64);  // small ring: forces wrap + contention

  std::latch gate(kProducers + 1);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      gate.arrive_and_wait();
      for (std::uint32_t s = 0; s < kPerProducer; ++s) {
        Tagged item{p, s};
        while (!ring.try_push(item)) {
          std::this_thread::yield();  // full: wait for the consumer
        }
      }
    });
  }

  std::vector<std::uint32_t> next_seq(kProducers, 0);
  std::uint64_t popped = 0;
  gate.arrive_and_wait();
  while (popped < std::uint64_t{kProducers} * kPerProducer) {
    Tagged item;
    if (!ring.try_pop(item)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_LT(item.producer, kProducers);
    // FIFO per producer: each producer's sequence pops in order.
    ASSERT_EQ(item.seq, next_seq[item.producer])
        << "producer " << item.producer << " reordered";
    ++next_seq[item.producer];
    ++popped;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(ring.empty_approx());
}

// Backpressure accounting: with no consumer, exactly `capacity` pushes
// succeed no matter how many producers race, and every rejected push
// leaves its item intact (the shed path reads it afterwards).
TEST(MpscRingStressTest, FullRingBackpressureAccountsEveryPush) {
  constexpr std::size_t kCapacity = 128;
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint32_t kPerProducer = 500;
  MpscRing<Tagged> ring(kCapacity);

  std::latch gate(kProducers);
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> intact{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      gate.arrive_and_wait();
      for (std::uint32_t s = 0; s < kPerProducer; ++s) {
        Tagged item{p, s};
        if (ring.try_push(item)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
          if (item.producer == p && item.seq == s) {
            intact.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(accepted.load(), kCapacity);
  EXPECT_EQ(accepted.load() + rejected.load(),
            std::uint64_t{kProducers} * kPerProducer);
  EXPECT_EQ(intact.load(), rejected.load());
  EXPECT_EQ(ring.size_approx(), kCapacity);

  // Drain and verify nothing was lost or duplicated among the accepted.
  std::map<std::uint32_t, std::uint32_t> last_seq;
  Tagged item;
  std::uint64_t drained = 0;
  while (ring.try_pop(item)) {
    auto [it, inserted] = last_seq.emplace(item.producer, item.seq);
    if (!inserted) {
      ASSERT_GT(item.seq, it->second) << "duplicate or reordered item";
      it->second = item.seq;
    }
    ++drained;
  }
  EXPECT_EQ(drained, accepted.load());
}

// Concurrent producers + live consumer under shared-ptr payloads: the
// exact item type the dispatch pipeline moves. Catches lifetime races
// (use-after-move, double-release) that int payloads cannot.
TEST(MpscRingStressTest, SharedPtrPayloadsNeverLeakOrTear) {
  constexpr std::uint32_t kProducers = 3;
  constexpr std::uint32_t kPerProducer = 1500;
  MpscRing<std::shared_ptr<std::uint64_t>> ring(32);

  std::latch gate(kProducers + 1);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      gate.arrive_and_wait();
      for (std::uint32_t s = 0; s < kPerProducer; ++s) {
        auto item =
            std::make_shared<std::uint64_t>((std::uint64_t{p} << 32) | s);
        while (!ring.try_push(item)) std::this_thread::yield();
        // A successful push moved the pointer out.
        ASSERT_EQ(item, nullptr);
      }
    });
  }

  std::uint64_t sum = 0;
  std::uint64_t popped = 0;
  gate.arrive_and_wait();
  while (popped < std::uint64_t{kProducers} * kPerProducer) {
    std::shared_ptr<std::uint64_t> item;
    if (!ring.try_pop(item)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_NE(item, nullptr);
    ASSERT_EQ(item.use_count(), 1);  // the ring released its reference
    sum += *item;
    ++popped;
  }
  for (auto& t : producers) t.join();

  std::uint64_t expected = 0;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    for (std::uint32_t s = 0; s < kPerProducer; ++s) {
      expected += (std::uint64_t{p} << 32) | s;
    }
  }
  EXPECT_EQ(sum, expected);
}

}  // namespace
}  // namespace faasbatch::live::dispatch
