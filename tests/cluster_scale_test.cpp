// Scale gate for pull-based cluster scheduling: a 1M-invocation skewed
// workload across 16 simulated workers must complete with every
// invocation terminally accounted, steals actually occurring, and
// byte-identical fault fingerprints across two seeded runs.
//
// This is the acceptance run for the pull plane, sized to stress the
// structures the small tests cannot: a pending queue that stays deep
// for most of the run, thousands of pull/steal/requeue rounds, and
// crash-driven backlog reclaims interleaved with failover re-dispatch.
// Under ASan the workload shrinks (instrumentation costs ~10x wall
// time); the invariants are identical at either size.

#include <gtest/gtest.h>

#include <cstdint>

#include "cluster/cluster.hpp"
#include "cluster/failure_detector.hpp"
#include "trace/workload.hpp"

namespace faasbatch::cluster {
namespace {

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr std::size_t kInvocations = 50'000;
#else
constexpr std::size_t kInvocations = 1'000'000;
#endif
constexpr std::size_t kWorkers = 16;

trace::Workload scale_workload() {
  trace::WorkloadSpec spec;
  spec.kind = trace::FunctionKind::kCpuIntensive;
  spec.invocations = kInvocations;
  // Stretch the horizon with the invocation count so the arrival rate
  // stays near (not hopelessly past) the cluster's service capacity —
  // the regime where pulls and steals actually contend.
  spec.horizon = kMinute * static_cast<SimDuration>(
      kInvocations / 50'000 == 0 ? 1 : kInvocations / 50'000);
  spec.num_functions = 32;
  spec.hot_fraction = 0.1;
  spec.hot_mass = 0.9;  // ~90% of arrivals on ~3 hot functions
  spec.seed = 2024;
  return trace::synthesize_workload(spec);
}

ClusterSpec scale_spec() {
  ClusterSpec spec;
  spec.workers = kWorkers;
  spec.balancer = BalancerKind::kFunctionAffinity;
  spec.mode = SchedulingMode::kPull;
  spec.pull.worker_capacity = 8;
  spec.pull.pull_batch = 32;
  spec.pull.steal.min_victim_backlog = 4;
  spec.pull.steal.steal_fraction = 0.5;
  spec.pull.steal.max_steal = 16;
  spec.worker_spec.scheduler = schedulers::SchedulerKind::kFaasBatch;
  // A light crash plan: enough deaths to exercise backlog requeue and
  // failover at scale, few enough that zombie instances (each holding a
  // full private records vector) stay within test memory budgets.
  FailureDetectorOptions detector;
  detector.scan_interval = 500 * kMillisecond;
  detector.suspect_after = 3 * kSecond;
  detector.confirm_window = 2 * kSecond;
  spec.detector = detector;
  spec.worker_spec.fault_plan.seed = 7;
  spec.worker_spec.fault_plan.worker_crash_rate = 0.0002;
  spec.worker_spec.fault_plan.worker_stall_multiplier = 1.0;
  spec.worker_spec.fault_plan.worker_restart_latency = 2 * kSecond;
  return spec;
}

TEST(ClusterScaleTest, MillionInvocationSkewedPullRunIsExactAndDeterministic) {
  const trace::Workload workload = scale_workload();
  const ClusterSpec spec = scale_spec();

  const ClusterResult first = run_cluster_experiment(spec, workload);

  // Terminal accounting: nothing stranded across ~10^6 invocations,
  // worker deaths, backlog reclaims, and steals.
  EXPECT_EQ(first.accounted, kInvocations);
  EXPECT_EQ(first.completed + first.failed + first.shed, kInvocations);
  std::size_t worker_accounted = 0;
  for (const WorkerResult& worker : first.workers) {
    worker_accounted += worker.outcomes.accounted();
  }
  EXPECT_EQ(worker_accounted, kInvocations);

  // The run exercised what it claims to: late binding, stealing, crash
  // failover, and backlog requeue all fired.
  EXPECT_GT(first.transfer.pulls, 0u);
  EXPECT_GT(first.transfer.steals, 0u);
  EXPECT_GT(first.transfer.stolen, 0u);
  EXPECT_GT(first.fault_stats.worker_crashes, 0u);
  EXPECT_GT(first.transfer.requeued, 0u);

  // Byte-identical replay: the whole pull/steal/failover history folds
  // into the fingerprints, so one flipped decision anywhere diverges.
  const ClusterResult second = run_cluster_experiment(spec, workload);
  EXPECT_EQ(first.chaos_fingerprint, second.chaos_fingerprint);
  EXPECT_EQ(first.fault_stats.fingerprint(), second.fault_stats.fingerprint());
  EXPECT_EQ(first.transfer.fingerprint(), second.transfer.fingerprint());
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.failed, second.failed);
  EXPECT_EQ(first.shed, second.shed);
  EXPECT_EQ(first.makespan, second.makespan);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(first.workers[w].outcomes.fingerprint(),
              second.workers[w].outcomes.fingerprint());
    EXPECT_EQ(first.workers[w].transfer.fingerprint(),
              second.workers[w].transfer.fingerprint());
  }
}

}  // namespace
}  // namespace faasbatch::cluster
