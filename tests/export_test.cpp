// Tests for JSON export of experiment results.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "eval/export.hpp"
#include "trace/workload.hpp"

namespace faasbatch::eval {
namespace {

ExperimentResult sample_result() {
  trace::WorkloadSpec spec;
  spec.invocations = 60;
  spec.seed = 13;
  const trace::Workload workload = trace::synthesize_workload(spec);
  return run_experiment(ExperimentSpec{}, workload);
}

TEST(ExportTest, ExperimentJsonHasAllMetrics) {
  const auto result = sample_result();
  const Json doc = experiment_to_json(result, 10);
  EXPECT_EQ(doc.at("scheduler").as_string(), "FaaSBatch");
  EXPECT_EQ(doc.at("invocations").as_int(), 60);
  EXPECT_EQ(doc.at("completed").as_int(), 60);
  EXPECT_EQ(doc.at("containers_provisioned").as_int(),
            static_cast<std::int64_t>(result.containers_provisioned));
  EXPECT_DOUBLE_EQ(doc.at("memory_avg_mib").as_double(), result.memory_avg_mib);
  EXPECT_GT(doc.at("makespan_s").as_double(), 0.0);
}

TEST(ExportTest, CdfSeriesAreMonotone) {
  const Json doc = experiment_to_json(sample_result(), 10);
  const auto& cdfs = doc.at("latency_cdfs_ms").as_object();
  for (const char* component :
       {"scheduling", "cold_start", "queuing", "execution", "total", "response"}) {
    const auto& series = cdfs.at(component).as_array();
    ASSERT_EQ(series.size(), 10u) << component;
    double last_q = 0.0, last_ms = -1.0;
    for (const Json& point : series) {
      EXPECT_GT(point.at("q").as_double(), last_q) << component;
      EXPECT_GE(point.at("ms").as_double(), last_ms) << component;
      last_q = point.at("q").as_double();
      last_ms = point.at("ms").as_double();
    }
    EXPECT_DOUBLE_EQ(last_q, 1.0);
  }
}

TEST(ExportTest, MemorySeriesCoversMakespan) {
  const auto result = sample_result();
  const Json doc = experiment_to_json(result, 5);
  const auto& series = doc.at("memory_series_1hz").as_array();
  EXPECT_EQ(series.size(), result.memory_series_mib.size());
  EXPECT_DOUBLE_EQ(series.front().at("t_s").as_double(), 0.0);
  for (const Json& point : series) EXPECT_GE(point.at("mib").as_double(), 512.0);
}

TEST(ExportTest, DumpedJsonParsesBack) {
  const Json doc = experiment_to_json(sample_result(), 8);
  const Json reparsed = Json::parse(doc.dump());
  EXPECT_EQ(reparsed.at("scheduler").as_string(), "FaaSBatch");
  EXPECT_EQ(reparsed.at("latency_cdfs_ms").at("total").as_array().size(), 8u);
}

TEST(ExportTest, ComparisonKeyedBySchedulerName) {
  trace::WorkloadSpec spec;
  spec.invocations = 40;
  spec.seed = 14;
  const trace::Workload workload = trace::synthesize_workload(spec);
  const Comparison comparison = run_comparison(ExperimentSpec{}, workload);
  const Json doc = comparison_to_json(comparison, 5);
  for (const char* name : {"Vanilla", "Kraken", "SFS", "FaaSBatch"}) {
    ASSERT_TRUE(doc.contains(name)) << name;
    EXPECT_EQ(doc.at(name).at("completed").as_int(), 40);
  }
}

TEST(ExportTest, SaveJsonWritesFile) {
  const std::string path = ::testing::TempDir() + "/fb_export_test.json";
  Json doc;
  doc["x"] = 1;
  save_json(path, doc);
  std::ifstream is(path);
  std::stringstream buffer;
  buffer << is.rdbuf();
  EXPECT_EQ(Json::parse(buffer.str()).at("x").as_int(), 1);
  std::remove(path.c_str());
  EXPECT_THROW(save_json("/nonexistent/dir/x.json", doc), std::runtime_error);
}

}  // namespace
}  // namespace faasbatch::eval
