#!/usr/bin/env bash
# Compile-fail harness for the Clang thread-safety annotations: proves
# the FB_ macros actually reject bad locking, not just decorate it.
#
# Each *_fail.cpp here contains one deliberate lock-discipline hole and
# MUST fail to compile under -Wthread-safety -Werror; control_ok.cpp
# uses the same classes correctly and MUST compile, so a broken include
# path or header error cannot masquerade as "annotations work".
#
# Exits 77 (ctest SKIP_RETURN_CODE) when no clang++ is available — the
# analysis only exists in Clang; the dev container ships g++ only and
# the thread-safety CI job provides clang.
set -u
cd "$(dirname "$0")"

CLANGXX="${CLANGXX:-clang++}"
SRC_DIR="${FB_SRC_DIR:-../../src}"

if ! command -v "$CLANGXX" >/dev/null 2>&1; then
  echo "compilefail: $CLANGXX not found; skipping (Clang-only analysis)" >&2
  exit 77
fi

FLAGS=(-std=c++17 -fsyntax-only -Wthread-safety -Wthread-safety-beta
       -Werror -I "$SRC_DIR")

if ! "$CLANGXX" "${FLAGS[@]}" control_ok.cpp; then
  echo "compilefail: FAIL: control_ok.cpp must compile clean (harness or" \
       "header breakage, not an annotation catch)" >&2
  exit 1
fi
echo "compilefail: control_ok.cpp compiles clean"

status=0
for f in *_fail.cpp; do
  if "$CLANGXX" "${FLAGS[@]}" "$f" 2>/dev/null; then
    echo "compilefail: FAIL: $f compiled but must be rejected by" \
         "-Wthread-safety" >&2
    status=1
  else
    echo "compilefail: $f correctly rejected"
  fi
done
exit $status
