// Must NOT compile: calls an FB_REQUIRES(mutex_) method without holding
// the mutex — the "caller holds mutex_" comment contract, now checked.
#include <vector>

#include "common/ordered_mutex.hpp"

namespace faasbatch {

class Queue {
 public:
  std::size_t locked_size() const FB_REQUIRES(mutex_) {
    return items_.size();
  }

  std::size_t bad_size() const {
    return locked_size();  // precondition not established
  }

 private:
  mutable Mutex mutex_;
  std::vector<int> items_ FB_GUARDED_BY(mutex_);
};

}  // namespace faasbatch
