// Positive control: correct lock discipline over the same class shape
// the *_fail.cpp cases break. Must compile clean under -Wthread-safety
// -Werror, proving harness failures below come from the annotations and
// not from include paths or header errors.
#include <vector>

#include "common/ordered_mutex.hpp"

namespace faasbatch {

class Queue {
 public:
  void push(int v) FB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    items_.push_back(v);
  }

  std::size_t locked_size() const FB_REQUIRES(mutex_) {
    return items_.size();
  }

  std::size_t size() FB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return locked_size();
  }

 private:
  mutable Mutex mutex_;
  std::vector<int> items_ FB_GUARDED_BY(mutex_);
};

void drive() {
  Queue q;
  q.push(1);
  (void)q.size();
}

}  // namespace faasbatch
