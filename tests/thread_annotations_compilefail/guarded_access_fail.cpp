// Must NOT compile: writes an FB_GUARDED_BY field without holding the
// mutex. -Wthread-safety rejects the access in bad_push().
#include <vector>

#include "common/ordered_mutex.hpp"

namespace faasbatch {

class Queue {
 public:
  void bad_push(int v) {
    items_.push_back(v);  // guarded field, no lock held
  }

 private:
  Mutex mutex_;
  std::vector<int> items_ FB_GUARDED_BY(mutex_);
};

}  // namespace faasbatch
