// Must NOT compile: returns from a scope that manually unlocked a
// UniqueLock on one path but not the other — unbalanced capability
// state at the join point.
#include "common/ordered_mutex.hpp"

namespace faasbatch {

class Shard {
 public:
  void bad_flush(bool flush) FB_EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    if (flush) {
      lock.unlock();
      // callback would run here
    }
    ++generation_;  // lock not held on the flush path
  }

 private:
  Mutex mutex_;
  unsigned generation_ FB_GUARDED_BY(mutex_) = 0;
};

}  // namespace faasbatch
