// Must NOT compile: enters an FB_EXCLUDES(mutex_) method while already
// holding the mutex — the self-deadlock shape OrderedMutex catches at
// runtime, rejected at compile time.
#include "common/ordered_mutex.hpp"

namespace faasbatch {

class Platform {
 public:
  void settle() FB_EXCLUDES(mutex_) {}

  void bad_reentry() {
    MutexLock lock(mutex_);
    settle();  // would self-deadlock on a non-reentrant mutex
  }

 private:
  Mutex mutex_;
};

}  // namespace faasbatch
