// Tests for the storage-client cost model, creation throttle, and the
// live client factory.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "storage/client.hpp"

namespace faasbatch::storage {
namespace {

TEST(ClientCostModelTest, UncontendedCreationMatchesPaper) {
  ClientCostModel model;
  // Paper Fig. 4: a single creation takes ~66 ms.
  EXPECT_DOUBLE_EQ(model.creation_ms(1), 66.0);
}

TEST(ClientCostModelTest, ContentionCurveFitsFig4) {
  ClientCostModel model;
  // Paper Fig. 4: concurrency 9 costs ~3165 ms — almost 50x.
  EXPECT_NEAR(model.creation_ms(9), 3165.0, 100.0);
  const double ratio = model.creation_ms(9) / model.creation_ms(1);
  EXPECT_NEAR(ratio, 48.0, 2.0);
}

TEST(ClientCostModelTest, MonotoneInConcurrency) {
  ClientCostModel model;
  for (std::size_t n = 1; n < 16; ++n) {
    EXPECT_LT(model.creation_ms(n), model.creation_ms(n + 1));
  }
}

TEST(ClientCostModelTest, ZeroConcurrencyClampedToOne) {
  ClientCostModel model;
  EXPECT_DOUBLE_EQ(model.creation_ms(0), model.creation_ms(1));
}

TEST(CreationThrottleTest, TracksInFlight) {
  CreationThrottle throttle;
  EXPECT_EQ(throttle.in_flight(), 0u);
  const SimDuration first = throttle.begin_creation();
  EXPECT_EQ(throttle.in_flight(), 1u);
  const SimDuration second = throttle.begin_creation();
  EXPECT_EQ(throttle.in_flight(), 2u);
  EXPECT_GT(second, first);  // contention raises the price
  throttle.end_creation();
  throttle.end_creation();
  EXPECT_EQ(throttle.in_flight(), 0u);
  throttle.end_creation();  // extra end is harmless
  EXPECT_EQ(throttle.in_flight(), 0u);
}

TEST(CreationThrottleTest, PriceDropsAfterDrain) {
  CreationThrottle throttle;
  const SimDuration solo = throttle.begin_creation();
  throttle.end_creation();
  (void)throttle.begin_creation();
  const SimDuration contended = throttle.begin_creation();
  throttle.end_creation();
  throttle.end_creation();
  const SimDuration solo_again = throttle.begin_creation();
  EXPECT_EQ(solo, solo_again);
  EXPECT_GT(contended, solo);
}

TEST(ClientFactoryTest, CreatesUsableClients) {
  ObjectStore store;
  ClientFactory::Options options;
  options.creation_work_ms = 0.5;
  options.client_buffer_bytes = 64 * kKiB;
  ClientFactory factory(store, options);
  auto client = factory.create(0xABC);
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->args_hash(), 0xABCu);
  EXPECT_EQ(client->resident_bytes(), 64 * kKiB);
  client->put("key", "value");
  EXPECT_EQ(*client->get("key"), "value");
  EXPECT_FALSE(client->get("absent").has_value());
  EXPECT_EQ(factory.creations(), 1u);
}

TEST(ClientFactoryTest, CreationsSerialiseOnTheFactoryLock) {
  ObjectStore store;
  ClientFactory::Options options;
  options.creation_work_ms = 5.0;
  options.client_buffer_bytes = 4 * kKiB;
  ClientFactory factory(store, options);

  // Measure wall time of 4 concurrent creations: if creation serialises,
  // it must take at least ~4x the single-creation work.
  // fb-lint-allow(raw-clock): measures real serialisation of creations.
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&factory, i] { (void)factory.create(static_cast<std::uint64_t>(i)); });
  }
  for (auto& thread : threads) thread.join();
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() -  // fb-lint-allow(raw-clock)
                                start)
                                .count();
  EXPECT_GE(elapsed_ms, 4 * 5.0 * 0.8);  // allow 20% timer slack
  EXPECT_EQ(factory.creations(), 4u);
}

TEST(ClientFactoryTest, DefaultOptionsWork) {
  ObjectStore store;
  ClientFactory factory(store);
  auto client = factory.create(1);
  EXPECT_NE(client, nullptr);
}

// Property sweep over the contention model exponent behaviour.
class CreationCurveTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CreationCurveTest, PowerLawShape) {
  const std::size_t n = GetParam();
  ClientCostModel model;
  const double expected =
      model.base_creation_ms * std::pow(static_cast<double>(n), model.contention_exponent);
  EXPECT_NEAR(model.creation_ms(n), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Concurrency, CreationCurveTest,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 9, 10, 64));

}  // namespace
}  // namespace faasbatch::storage
