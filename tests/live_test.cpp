// Tests for the live (real-thread) runtime: containers, platform
// policies, handlers, and multiplexer behaviour under real concurrency.
//
// Timing-sensitive behaviour (window flushes, busy/idle container
// decisions) is driven through a VirtualClock and completion gates, never
// wall-clock sleeps, so every assertion is deterministic — including
// under ThreadSanitizer's heavy scheduling perturbation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <latch>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "live/functions.hpp"
#include "live/live_container.hpp"
#include "live/live_platform.hpp"

namespace faasbatch::live {
namespace {

/// Repeatedly advances the virtual clock (waking window waits) until
/// `pred` holds. The 1 ms pause is liveness pacing for the dispatcher
/// thread, not a timing assumption: the loop tolerates arbitrarily slow
/// scheduling and only ever fails if `pred` never becomes true.
template <typename Pred>
bool advance_until(VirtualClock& clock, std::chrono::milliseconds step, Pred pred) {
  for (int i = 0; i < 10000; ++i) {
    if (pred()) return true;
    clock.advance(std::chrono::duration_cast<ClockTime>(step));
    // Real 1 ms pacing while polling a cross-thread predicate.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // fb-lint-allow(raw-clock)
  }
  return pred();
}

LiveContainerOptions fast_container() {
  LiveContainerOptions options;
  options.threads = 2;
  options.cold_start_work_ms = 1.0;
  options.base_memory_bytes = 64 * kKiB;
  return options;
}

TEST(FibTest, KnownValues) {
  EXPECT_EQ(fib(0), 0u);
  EXPECT_EQ(fib(1), 1u);
  EXPECT_EQ(fib(10), 55u);
  EXPECT_EQ(fib(20), 6765u);
}

TEST(BusyWorkTest, TakesRoughlyRequestedTime) {
  // Wall-time bound: asserts real elapsed time stays sane.
  const auto start = std::chrono::steady_clock::now();  // fb-lint-allow(raw-clock)
  (void)busy_work_ms(10.0);
  const double elapsed = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() -  // fb-lint-allow(raw-clock)
                             start)
                             .count();
  EXPECT_GE(elapsed, 9.0);
}

TEST(LiveContainerTest, ColdStartIsMeasuredAndMemoryResident) {
  LiveContainer container("f", fast_container());
  EXPECT_GE(container.cold_start_ms(), 1.0);
  EXPECT_EQ(container.base_memory(), 64 * kKiB);
  EXPECT_EQ(container.function(), "f");
}

TEST(LiveContainerTest, ExecutesSubmittedTasks) {
  LiveContainer container("f", fast_container());
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    container.submit([&count] { ++count; });
  }
  container.drain();
  EXPECT_EQ(count.load(), 20);
  EXPECT_EQ(container.executed(), 20u);
}

TEST(LiveContainerTest, TasksRunConcurrently) {
  LiveContainerOptions options = fast_container();
  options.threads = 4;
  LiveContainer container("f", options);
  // Two tasks rendezvous at a latch: neither can pass until both are
  // running, so reaching drain() proves >= 2 ran concurrently — no
  // sleep-and-hope measurement.
  std::latch rendezvous(2);
  std::atomic<int> met{0};
  for (int i = 0; i < 2; ++i) {
    container.submit([&] {
      rendezvous.arrive_and_wait();
      ++met;
    });
  }
  container.drain();
  EXPECT_EQ(met.load(), 2);
}

TEST(LiveContainerTest, DrainWaitsForInFlightWork) {
  LiveContainer container("f", fast_container());
  std::atomic<bool> finished{false};
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  container.submit([&finished, open] {
    open.wait();
    finished = true;
  });
  // The task was queued before drain(), so drain() must not return until
  // it has run to completion once the gate opens.
  gate.set_value();
  container.drain();
  EXPECT_TRUE(finished.load());
}

LivePlatformOptions fast_platform(LivePolicy policy) {
  LivePlatformOptions options;
  options.policy = policy;
  options.window = std::chrono::milliseconds(15);
  options.container = fast_container();
  options.client_factory.creation_work_ms = 1.0;
  options.client_factory.client_buffer_bytes = 16 * kKiB;
  return options;
}

TEST(LivePlatformTest, InvokeUnknownFunctionThrows) {
  LivePlatform platform(fast_platform(LivePolicy::kFaasBatch));
  EXPECT_THROW(platform.invoke("nope"), std::invalid_argument);
}

TEST(LivePlatformTest, ReportsHaveSaneTimings) {
  LivePlatform platform(fast_platform(LivePolicy::kFaasBatch));
  platform.register_function("fib", make_fib_handler(18));
  auto report = platform.invoke("fib").get();
  EXPECT_GE(report.total_ms, report.exec_ms);
  EXPECT_GE(report.queue_ms, 0.0);
  EXPECT_GT(report.total_ms, 0.0);
}

TEST(LivePlatformTest, FaasBatchGroupsIntoFewContainers) {
  LivePlatform platform(fast_platform(LivePolicy::kFaasBatch));
  platform.register_function("fib", make_fib_handler(15));
  std::vector<std::future<InvocationReport>> futures;
  for (int i = 0; i < 40; ++i) futures.push_back(platform.invoke("fib"));
  for (auto& future : futures) future.get();
  // One function -> one (occasionally two, across windows) container.
  EXPECT_LE(platform.containers_created(), 2u);
}

TEST(LivePlatformTest, VanillaCreatesManyContainers) {
  LivePlatform platform(fast_platform(LivePolicy::kVanilla));
  // All six invocations rendezvous at a latch, so every one is in flight
  // at once and no warm container is ever available — forced overlap,
  // not sleep-based overlap.
  std::latch all_running(6);
  platform.register_function("slow", [&all_running](FunctionContext&) {
    all_running.arrive_and_wait();
  });
  std::vector<std::future<InvocationReport>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(platform.invoke("slow"));
  for (auto& future : futures) future.get();
  EXPECT_EQ(platform.containers_created(), 6u);
}

TEST(LivePlatformTest, VanillaReusesIdleContainers) {
  LivePlatform platform(fast_platform(LivePolicy::kVanilla));
  platform.register_function("quick", make_fib_handler(5));
  for (int i = 0; i < 5; ++i) {
    platform.invoke("quick").get();  // strictly sequential
  }
  EXPECT_EQ(platform.containers_created(), 1u);
}

TEST(LivePlatformTest, MultiplexerSharesClientsWithinContainer) {
  LivePlatform platform(fast_platform(LivePolicy::kFaasBatch));
  platform.register_function("io", make_io_handler("acct"));
  std::vector<std::future<InvocationReport>> futures;
  for (int i = 0; i < 25; ++i) futures.push_back(platform.invoke("io"));
  for (auto& future : futures) future.get();
  EXPECT_EQ(platform.client_creations(), 1u);
  // The objects really were written to the store through the client.
  EXPECT_GT(platform.store().stats().puts, 0u);
}

TEST(LivePlatformTest, NoMuxHandlerCreatesPerInvocation) {
  LivePlatform platform(fast_platform(LivePolicy::kFaasBatch));
  platform.register_function("io", make_io_handler_no_mux("acct"));
  std::vector<std::future<InvocationReport>> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(platform.invoke("io"));
  for (auto& future : futures) future.get();
  EXPECT_EQ(platform.client_creations(), 10u);
}

TEST(LivePlatformTest, IoHandlerRoundTripsData) {
  LivePlatform platform(fast_platform(LivePolicy::kFaasBatch));
  platform.register_function("io", make_io_handler("acct", 256));
  platform.invoke("io").get();
  // The handler wrote a 256-byte object under the account prefix.
  bool found = false;
  for (int i = 0; i < 16 && !found; ++i) {
    found = platform.store().exists("acct/obj-" + std::to_string(i));
  }
  EXPECT_TRUE(found);
}

TEST(LivePlatformTest, DrainBlocksUntilQuiescent) {
  LivePlatform platform(fast_platform(LivePolicy::kFaasBatch));
  platform.register_function("fib", make_fib_handler(18));
  std::vector<std::future<InvocationReport>> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(platform.invoke("fib"));
  platform.drain();
  for (auto& future : futures) {
    EXPECT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  }
}

TEST(LivePlatformTest, FaasBatchScalesOutWhenContainerBusy) {
  // Window timing runs on a virtual clock; container busy-ness is pinned
  // by a gate the test controls. No wall-clock in any decision.
  VirtualClock clock;
  LivePlatformOptions options = fast_platform(LivePolicy::kFaasBatch);
  options.clock = &clock;
  LivePlatform platform(options);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::atomic<int> started{0};
  platform.register_function("slow", [&started, open](FunctionContext&) {
    ++started;
    open.wait();
  });

  // First window's group occupies container 1 (handler blocked on gate)...
  auto first = platform.invoke("slow");
  ASSERT_TRUE(advance_until(clock, options.window,
                            [&] { return started.load() == 1; }));
  // ...so the second window's group must scale out to a new container.
  auto second = platform.invoke("slow");
  ASSERT_TRUE(advance_until(clock, options.window,
                            [&] { return started.load() == 2; }));
  EXPECT_EQ(platform.containers_created(), 2u);
  gate.set_value();
  first.get();
  second.get();
  // Once both are idle, a third burst reuses them instead of growing.
  auto third = platform.invoke("slow");
  ASSERT_TRUE(advance_until(clock, options.window,
                            [&] { return started.load() == 3; }));
  third.get();
  EXPECT_EQ(platform.containers_created(), 2u);
}

TEST(LivePlatformTest, DeadlineExpiresAtWindowFlush) {
  // The dispatch window (15 ms) is longer than the request deadline
  // (5 ms), so by the time the window flushes the deadline has passed:
  // the future must resolve kDeadlineExpired and the handler never runs.
  // All timing is virtual — the outcome is decided by clock arithmetic,
  // not scheduling.
  VirtualClock clock;
  LivePlatformOptions options = fast_platform(LivePolicy::kFaasBatch);
  options.clock = &clock;
  LivePlatform platform(options);
  std::atomic<int> ran{0};
  platform.register_function("f", [&ran](FunctionContext&) { ++ran; });

  auto future = platform.invoke("f", "", std::chrono::milliseconds(5));
  ASSERT_TRUE(advance_until(clock, options.window, [&] {
    return future.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  }));
  const InvocationReport report = future.get();
  EXPECT_EQ(report.status, InvocationStatus::kDeadlineExpired);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(ran.load(), 0);
  // drain() must not wait on a terminally-settled request.
  platform.drain();
}

TEST(LivePlatformTest, DeadlineExpiresWhileQueuedBehindBusyContainer) {
  // Two gate-blocked invocations occupy both container threads; a third
  // with a deadline joins the same window's group and queues inside the
  // container. The clock then advances past its deadline before the gate
  // opens, so the exec-start check must expire it without running it.
  VirtualClock clock;
  LivePlatformOptions options = fast_platform(LivePolicy::kFaasBatch);
  options.clock = &clock;
  options.container.threads = 2;
  LivePlatform platform(options);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::atomic<int> started{0};
  platform.register_function("slow", [&started, open](FunctionContext&) {
    ++started;
    open.wait();
  });

  auto a = platform.invoke("slow");
  auto b = platform.invoke("slow");
  // Deadline far beyond the window, so it survives the flush check and
  // expires only inside the container (100 ms < the 500 ms advance).
  auto c = platform.invoke("slow", "", std::chrono::milliseconds(100));
  ASSERT_TRUE(advance_until(clock, options.window,
                            [&] { return started.load() == 2; }));
  clock.advance(std::chrono::duration_cast<ClockTime>(std::chrono::milliseconds(500)));
  gate.set_value();
  EXPECT_EQ(a.get().status, InvocationStatus::kOk);
  EXPECT_EQ(b.get().status, InvocationStatus::kOk);
  EXPECT_EQ(c.get().status, InvocationStatus::kDeadlineExpired);
  EXPECT_EQ(started.load(), 2);
}

TEST(LivePlatformTest, ShedsWhenQueueFull) {
  // With the virtual clock never advanced the dispatcher sits in its
  // window wait, so the first request stays queued and the second hits
  // the max_queue bound: its future is ready immediately with kShed.
  VirtualClock clock;
  LivePlatformOptions options = fast_platform(LivePolicy::kFaasBatch);
  options.clock = &clock;
  options.max_queue = 1;
  LivePlatform platform(options);
  std::atomic<int> ran{0};
  platform.register_function("f", [&ran](FunctionContext&) { ++ran; });

  auto queued = platform.invoke("f");
  auto shed = platform.invoke("f");
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(shed.get().status, InvocationStatus::kShed);

  // The admitted request still completes once the window flushes.
  ASSERT_TRUE(advance_until(clock, options.window, [&] {
    return queued.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  }));
  EXPECT_EQ(queued.get().status, InvocationStatus::kOk);
  EXPECT_EQ(ran.load(), 1);
}

TEST(LivePlatformTest, ShutdownDrainsQueuedAndCancelsNew) {
  // shutdown() is a graceful drain: requests already queued flush and
  // execute immediately — even mid-window on a never-advanced virtual
  // clock — while later invokes resolve at once with kCancelled.
  VirtualClock clock;
  LivePlatformOptions options = fast_platform(LivePolicy::kFaasBatch);
  options.clock = &clock;
  LivePlatform platform(options);
  std::atomic<int> ran{0};
  platform.register_function("f", [&ran](FunctionContext&) { ++ran; });

  auto a = platform.invoke("f");
  auto b = platform.invoke("f");
  platform.shutdown();
  EXPECT_EQ(a.get().status, InvocationStatus::kOk);
  EXPECT_EQ(b.get().status, InvocationStatus::kOk);
  EXPECT_EQ(ran.load(), 2);

  auto late = platform.invoke("f");
  ASSERT_EQ(late.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(late.get().status, InvocationStatus::kCancelled);
  EXPECT_EQ(ran.load(), 2);
  platform.drain();  // returns: nothing outstanding
}

TEST(LivePlatformTest, SeparateFunctionsSeparateContainers) {
  LivePlatform platform(fast_platform(LivePolicy::kFaasBatch));
  platform.register_function("a", make_fib_handler(10));
  platform.register_function("b", make_fib_handler(10));
  std::vector<std::future<InvocationReport>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(platform.invoke(i % 2 == 0 ? "a" : "b"));
  }
  for (auto& future : futures) future.get();
  EXPECT_GE(platform.containers_created(), 2u);
}

// ---------------------------------------------------------------------
// Sharded dispatch pipeline (and single-queue parity)
// ---------------------------------------------------------------------

TEST(ShardedDispatchTest, StatsExposePipelineShape) {
  LivePlatformOptions options = fast_platform(LivePolicy::kFaasBatch);
  options.shards = 3;
  options.dispatch_workers = 2;
  LivePlatform platform(options);
  platform.register_function("fib", make_fib_handler(10));

  DispatchStats stats = platform.dispatch_stats();
  EXPECT_EQ(stats.mode, DispatchMode::kSharded);
  EXPECT_EQ(stats.shards, 3u);
  EXPECT_EQ(stats.workers, 2u);
  ASSERT_EQ(stats.shard_stats.size(), 3u);

  std::vector<std::future<InvocationReport>> futures;
  for (int i = 0; i < 12; ++i) futures.push_back(platform.invoke("fib"));
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());

  stats = platform.dispatch_stats();
  std::uint64_t enqueued = 0, windows = 0;
  for (const auto& snap : stats.shard_stats) {
    enqueued += snap.enqueued;
    windows += snap.windows;
  }
  EXPECT_EQ(enqueued, 12u);
  EXPECT_GE(windows, 1u);
}

TEST(ShardedDispatchTest, SingleQueueModeReportsEmptyShardStats) {
  LivePlatformOptions options = fast_platform(LivePolicy::kFaasBatch);
  options.dispatch = DispatchMode::kSingleQueue;
  LivePlatform platform(options);
  const DispatchStats stats = platform.dispatch_stats();
  EXPECT_EQ(stats.mode, DispatchMode::kSingleQueue);
  EXPECT_EQ(stats.shards, 0u);
  EXPECT_TRUE(stats.shard_stats.empty());
}

TEST(ShardedDispatchTest, SameFunctionAlwaysLandsOnOneShard) {
  // Shard assignment hashes the function name, so one function's
  // requests never spread across shards — the per-shard window sees the
  // whole batching opportunity, exactly like the single global window.
  LivePlatformOptions options = fast_platform(LivePolicy::kFaasBatch);
  options.shards = 4;
  LivePlatform platform(options);
  platform.register_function("fib", make_fib_handler(10));
  std::vector<std::future<InvocationReport>> futures;
  for (int i = 0; i < 20; ++i) futures.push_back(platform.invoke("fib"));
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());

  int shards_used = 0;
  for (const auto& snap : platform.dispatch_stats().shard_stats) {
    if (snap.enqueued > 0) ++shards_used;
  }
  EXPECT_EQ(shards_used, 1);
}

TEST(ShardedDispatchTest, SingleQueueModeStillBatchesAndSheds) {
  // The legacy pipeline stays selectable for differential comparison;
  // its core behaviours must keep working.
  VirtualClock clock;
  LivePlatformOptions options = fast_platform(LivePolicy::kFaasBatch);
  options.dispatch = DispatchMode::kSingleQueue;
  options.clock = &clock;
  options.max_queue = 1;
  LivePlatform platform(options);
  std::atomic<int> ran{0};
  platform.register_function("f", [&ran](FunctionContext&) { ++ran; });

  auto queued = platform.invoke("f");
  auto shed = platform.invoke("f");
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(shed.get().status, InvocationStatus::kShed);
  ASSERT_TRUE(advance_until(clock, options.window, [&] {
    return queued.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  }));
  EXPECT_EQ(queued.get().status, InvocationStatus::kOk);
  EXPECT_EQ(ran.load(), 1);
}

TEST(ShardedDispatchTest, SingleQueueModeShutdownCancelsNew) {
  VirtualClock clock;
  LivePlatformOptions options = fast_platform(LivePolicy::kFaasBatch);
  options.dispatch = DispatchMode::kSingleQueue;
  options.clock = &clock;
  LivePlatform platform(options);
  std::atomic<int> ran{0};
  platform.register_function("f", [&ran](FunctionContext&) { ++ran; });
  auto a = platform.invoke("f");
  platform.shutdown();
  EXPECT_EQ(a.get().status, InvocationStatus::kOk);
  auto late = platform.invoke("f");
  ASSERT_EQ(late.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(late.get().status, InvocationStatus::kCancelled);
  EXPECT_EQ(ran.load(), 1);
}

// Regression test for the shutdown/invoke race: a late invoke() must
// never slip past the draining check into a queue nobody drains
// (accepted-but-never-settled future). Admission close and the final
// drain are atomic: under a storm of concurrent invokes racing
// shutdown(), every single future must reach a terminal state and the
// accounting must add up exactly.
void shutdown_invoke_storm(DispatchMode mode) {
  LivePlatformOptions options = fast_platform(LivePolicy::kFaasBatch);
  options.dispatch = mode;
  options.window = std::chrono::milliseconds(1);
  LivePlatform platform(options);
  std::atomic<int> ran{0};
  platform.register_function("f", [&ran](FunctionContext&) { ++ran; });

  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::latch gate(kThreads + 1);
  std::vector<std::vector<std::future<InvocationReport>>> futures(kThreads);
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    futures[t].reserve(kPerThread);
    producers.emplace_back([&, t] {
      gate.arrive_and_wait();
      for (int i = 0; i < kPerThread; ++i) {
        futures[t].push_back(platform.invoke("f"));
      }
    });
  }
  gate.arrive_and_wait();
  // Shut down while the storm is in full flight.
  platform.shutdown();
  for (auto& producer : producers) producer.join();
  platform.drain();

  int ok = 0, cancelled = 0, other = 0;
  for (auto& per_thread : futures) {
    for (auto& future : per_thread) {
      // drain() returned, so every accepted invocation has settled and
      // every rejected one settled at submit: no future may still be
      // pending — a pending one is exactly the accepted-but-never-
      // drained bug this test pins down.
      ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
                std::future_status::ready);
      switch (future.get().status) {
        case InvocationStatus::kOk: ++ok; break;
        case InvocationStatus::kCancelled: ++cancelled; break;
        default: ++other; break;
      }
    }
  }
  EXPECT_EQ(ok + cancelled + other, kThreads * kPerThread);
  EXPECT_EQ(other, 0);  // unbounded queue, no deadlines: no shed/expiry
  EXPECT_EQ(ok, ran.load());  // every kOk really executed, exactly once
}

TEST(ShardedDispatchTest, ShutdownInvokeRaceNeverStrandsARequest) {
  shutdown_invoke_storm(DispatchMode::kSharded);
}

TEST(ShardedDispatchTest, ShutdownInvokeRaceNeverStrandsARequestSingleQueue) {
  shutdown_invoke_storm(DispatchMode::kSingleQueue);
}

TEST(ShardedDispatchTest, ManyFunctionsSpreadAcrossShardsAndStillBatch) {
  // Different functions spread over shards (not necessarily all — the
  // hash may collide) while each function's burst still batches into
  // few containers.
  LivePlatformOptions options = fast_platform(LivePolicy::kFaasBatch);
  options.shards = 8;
  LivePlatform platform(options);
  const int kFunctions = 16;
  for (int f = 0; f < kFunctions; ++f) {
    platform.register_function("f" + std::to_string(f), make_fib_handler(8));
  }
  std::vector<std::future<InvocationReport>> futures;
  for (int i = 0; i < kFunctions * 8; ++i) {
    futures.push_back(platform.invoke("f" + std::to_string(i % kFunctions)));
  }
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());

  int shards_used = 0;
  for (const auto& snap : platform.dispatch_stats().shard_stats) {
    if (snap.enqueued > 0) ++shards_used;
  }
  EXPECT_GE(shards_used, 2);
  // Window batching held per function: far fewer containers than
  // invocations (each function needs at most a couple of containers).
  EXPECT_LE(platform.containers_created(), 2u * kFunctions);
}

TEST(ShardedDispatchTest, ShedAccountingMatchesShardCounters) {
  // Bounded sharded admission: platform-level kShed outcomes and the
  // shard's own shed counter must agree exactly.
  VirtualClock clock;
  LivePlatformOptions options = fast_platform(LivePolicy::kFaasBatch);
  options.clock = &clock;
  options.max_queue = 2;
  options.shards = 2;
  LivePlatform platform(options);
  std::atomic<int> ran{0};
  platform.register_function("f", [&ran](FunctionContext&) { ++ran; });

  // Clock never advances: the shard sits in its window wait, so pushes
  // beyond max_queue=2 shed deterministically.
  std::vector<std::future<InvocationReport>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(platform.invoke("f"));
  int shed = 0;
  int pending = 0;
  for (auto& future : futures) {
    if (future.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      EXPECT_EQ(future.get().status, InvocationStatus::kShed);
      ++shed;
    } else {
      ++pending;
    }
  }
  EXPECT_EQ(shed, 4);
  EXPECT_EQ(pending, 2);

  std::uint64_t shard_shed = 0;
  for (const auto& snap : platform.dispatch_stats().shard_stats) {
    shard_shed += snap.shed;
  }
  EXPECT_EQ(shard_shed, 4u);
  platform.shutdown();  // flushes the two queued requests immediately
  platform.drain();
  EXPECT_EQ(ran.load(), 2);
}

}  // namespace
}  // namespace faasbatch::live
