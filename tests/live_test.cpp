// Tests for the live (real-thread) runtime: containers, platform
// policies, handlers, and multiplexer behaviour under real concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "live/functions.hpp"
#include "live/live_container.hpp"
#include "live/live_platform.hpp"

namespace faasbatch::live {
namespace {

LiveContainerOptions fast_container() {
  LiveContainerOptions options;
  options.threads = 2;
  options.cold_start_work_ms = 1.0;
  options.base_memory_bytes = 64 * kKiB;
  return options;
}

TEST(FibTest, KnownValues) {
  EXPECT_EQ(fib(0), 0u);
  EXPECT_EQ(fib(1), 1u);
  EXPECT_EQ(fib(10), 55u);
  EXPECT_EQ(fib(20), 6765u);
}

TEST(BusyWorkTest, TakesRoughlyRequestedTime) {
  const auto start = std::chrono::steady_clock::now();
  (void)busy_work_ms(10.0);
  const double elapsed = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  EXPECT_GE(elapsed, 9.0);
}

TEST(LiveContainerTest, ColdStartIsMeasuredAndMemoryResident) {
  LiveContainer container("f", fast_container());
  EXPECT_GE(container.cold_start_ms(), 1.0);
  EXPECT_EQ(container.base_memory(), 64 * kKiB);
  EXPECT_EQ(container.function(), "f");
}

TEST(LiveContainerTest, ExecutesSubmittedTasks) {
  LiveContainer container("f", fast_container());
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    container.submit([&count] { ++count; });
  }
  container.drain();
  EXPECT_EQ(count.load(), 20);
  EXPECT_EQ(container.executed(), 20u);
}

TEST(LiveContainerTest, TasksRunConcurrently) {
  LiveContainerOptions options = fast_container();
  options.threads = 4;
  LiveContainer container("f", options);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 4; ++i) {
    container.submit([&] {
      const int now = ++concurrent;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      --concurrent;
    });
  }
  container.drain();
  EXPECT_GE(peak.load(), 2);
}

TEST(LiveContainerTest, DrainWaitsForInFlightWork) {
  LiveContainer container("f", fast_container());
  std::atomic<bool> finished{false};
  container.submit([&finished] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    finished = true;
  });
  container.drain();
  EXPECT_TRUE(finished.load());
}

LivePlatformOptions fast_platform(LivePolicy policy) {
  LivePlatformOptions options;
  options.policy = policy;
  options.window = std::chrono::milliseconds(15);
  options.container = fast_container();
  options.client_factory.creation_work_ms = 1.0;
  options.client_factory.client_buffer_bytes = 16 * kKiB;
  return options;
}

TEST(LivePlatformTest, InvokeUnknownFunctionThrows) {
  LivePlatform platform(fast_platform(LivePolicy::kFaasBatch));
  EXPECT_THROW(platform.invoke("nope"), std::invalid_argument);
}

TEST(LivePlatformTest, ReportsHaveSaneTimings) {
  LivePlatform platform(fast_platform(LivePolicy::kFaasBatch));
  platform.register_function("fib", make_fib_handler(18));
  auto report = platform.invoke("fib").get();
  EXPECT_GE(report.total_ms, report.exec_ms);
  EXPECT_GE(report.queue_ms, 0.0);
  EXPECT_GT(report.total_ms, 0.0);
}

TEST(LivePlatformTest, FaasBatchGroupsIntoFewContainers) {
  LivePlatform platform(fast_platform(LivePolicy::kFaasBatch));
  platform.register_function("fib", make_fib_handler(15));
  std::vector<std::future<InvocationReport>> futures;
  for (int i = 0; i < 40; ++i) futures.push_back(platform.invoke("fib"));
  for (auto& future : futures) future.get();
  // One function -> one (occasionally two, across windows) container.
  EXPECT_LE(platform.containers_created(), 2u);
}

TEST(LivePlatformTest, VanillaCreatesManyContainers) {
  LivePlatform platform(fast_platform(LivePolicy::kVanilla));
  platform.register_function("slow", [](FunctionContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  std::vector<std::future<InvocationReport>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(platform.invoke("slow"));
  for (auto& future : futures) future.get();
  // All six overlap, so no warm container is ever available.
  EXPECT_EQ(platform.containers_created(), 6u);
}

TEST(LivePlatformTest, VanillaReusesIdleContainers) {
  LivePlatform platform(fast_platform(LivePolicy::kVanilla));
  platform.register_function("quick", make_fib_handler(5));
  for (int i = 0; i < 5; ++i) {
    platform.invoke("quick").get();  // strictly sequential
  }
  EXPECT_EQ(platform.containers_created(), 1u);
}

TEST(LivePlatformTest, MultiplexerSharesClientsWithinContainer) {
  LivePlatform platform(fast_platform(LivePolicy::kFaasBatch));
  platform.register_function("io", make_io_handler("acct"));
  std::vector<std::future<InvocationReport>> futures;
  for (int i = 0; i < 25; ++i) futures.push_back(platform.invoke("io"));
  for (auto& future : futures) future.get();
  EXPECT_EQ(platform.client_creations(), 1u);
  // The objects really were written to the store through the client.
  EXPECT_GT(platform.store().stats().puts, 0u);
}

TEST(LivePlatformTest, NoMuxHandlerCreatesPerInvocation) {
  LivePlatform platform(fast_platform(LivePolicy::kFaasBatch));
  platform.register_function("io", make_io_handler_no_mux("acct"));
  std::vector<std::future<InvocationReport>> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(platform.invoke("io"));
  for (auto& future : futures) future.get();
  EXPECT_EQ(platform.client_creations(), 10u);
}

TEST(LivePlatformTest, IoHandlerRoundTripsData) {
  LivePlatform platform(fast_platform(LivePolicy::kFaasBatch));
  platform.register_function("io", make_io_handler("acct", 256));
  platform.invoke("io").get();
  // The handler wrote a 256-byte object under the account prefix.
  bool found = false;
  for (int i = 0; i < 16 && !found; ++i) {
    found = platform.store().exists("acct/obj-" + std::to_string(i));
  }
  EXPECT_TRUE(found);
}

TEST(LivePlatformTest, DrainBlocksUntilQuiescent) {
  LivePlatform platform(fast_platform(LivePolicy::kFaasBatch));
  platform.register_function("fib", make_fib_handler(18));
  std::vector<std::future<InvocationReport>> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(platform.invoke("fib"));
  platform.drain();
  for (auto& future : futures) {
    EXPECT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  }
}

TEST(LivePlatformTest, FaasBatchScalesOutWhenContainerBusy) {
  LivePlatform platform(fast_platform(LivePolicy::kFaasBatch));
  platform.register_function("slow", [](FunctionContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  });
  // First window's group occupies container 1 for ~150 ms...
  auto first = platform.invoke("slow");
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  // ...so the second window's group must scale out to a new container.
  auto second = platform.invoke("slow");
  first.get();
  second.get();
  EXPECT_EQ(platform.containers_created(), 2u);
  // Once both are idle, a third burst reuses them instead of growing.
  auto third = platform.invoke("slow");
  third.get();
  EXPECT_EQ(platform.containers_created(), 2u);
}

TEST(LivePlatformTest, SeparateFunctionsSeparateContainers) {
  LivePlatform platform(fast_platform(LivePolicy::kFaasBatch));
  platform.register_function("a", make_fib_handler(10));
  platform.register_function("b", make_fib_handler(10));
  std::vector<std::future<InvocationReport>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(platform.invoke(i % 2 == 0 ? "a" : "b"));
  }
  for (auto& future : futures) future.get();
  EXPECT_GE(platform.containers_created(), 2u);
}

}  // namespace
}  // namespace faasbatch::live
