// Tests for the Fig. 9 duration model and the fib cost curve.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "metrics/stats.hpp"
#include "trace/duration_model.hpp"

namespace faasbatch::trace {
namespace {

TEST(DurationModelTest, BucketProbabilitiesMatchPaper) {
  const auto& buckets = paper_duration_buckets();
  EXPECT_DOUBLE_EQ(buckets[0].probability, 0.5513);
  EXPECT_DOUBLE_EQ(buckets[5].probability, 0.1014);
  double total = 0.0;
  for (const auto& bucket : buckets) total += bucket.probability;
  EXPECT_NEAR(total, 1.0, 0.005);
}

TEST(DurationModelTest, SamplesRespectTailCap) {
  DurationModel model(2000.0);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const double d = model.sample_ms(rng);
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, 2000.0);
  }
}

TEST(DurationModelTest, TailCapValidation) {
  EXPECT_THROW(DurationModel(1000.0), std::invalid_argument);
  EXPECT_NO_THROW(DurationModel(1551.0));
}

TEST(DurationModelTest, BucketOfClassifiesEdges) {
  DurationModel model;
  EXPECT_EQ(model.bucket_of(0.0), 0u);
  EXPECT_EQ(model.bucket_of(49.9), 0u);
  EXPECT_EQ(model.bucket_of(50.0), 1u);
  EXPECT_EQ(model.bucket_of(399.9), 3u);
  EXPECT_EQ(model.bucket_of(1550.0), 5u);
  EXPECT_EQ(model.bucket_of(99999.0), 5u);
}

// Property sweep: each bucket's empirical mass matches Fig. 9.
class DurationBucketTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DurationBucketTest, EmpiricalMassMatchesPaper) {
  const std::size_t bucket = GetParam();
  DurationModel model;
  Rng rng(97);
  constexpr int kN = 60000;
  int hits = 0;
  for (int i = 0; i < kN; ++i) {
    if (model.bucket_of(model.sample_ms(rng)) == bucket) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, model.bucket_probability(bucket), 0.01);
}

INSTANTIATE_TEST_SUITE_P(AllBuckets, DurationBucketTest,
                         ::testing::Range<std::size_t>(0, 6));

TEST(FibCostModelTest, DefaultCalibrationMatchesPaperStatement) {
  // Paper: fib with N between 20 and 26 completes in less than 45 ms.
  FibCostModel model;
  EXPECT_LT(model.duration_ms(26), 45.0);
  EXPECT_GT(model.duration_ms(27), 45.0);
}

TEST(FibCostModelTest, GoldenRatioGrowth) {
  FibCostModel model;
  const double ratio = model.duration_ms(30) / model.duration_ms(29);
  EXPECT_NEAR(ratio, 1.618, 0.001);
}

TEST(FibCostModelTest, InversionRoundTrips) {
  FibCostModel model;
  for (int n = 15; n <= 35; ++n) {
    EXPECT_EQ(model.n_for_duration(model.duration_ms(n)), n);
  }
}

TEST(FibCostModelTest, InversionClamps) {
  FibCostModel model;
  EXPECT_EQ(model.n_for_duration(0.0), 1);
  EXPECT_EQ(model.n_for_duration(-5.0), 1);
  EXPECT_EQ(model.n_for_duration(1e18), 45);
}

TEST(FibCostModelTest, Validation) {
  EXPECT_THROW(FibCostModel(20, 0.0), std::invalid_argument);
  EXPECT_THROW(FibCostModel(20, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace faasbatch::trace
