// Tests for keep-alive policies: fixed, histogram, pool integration.
#include <gtest/gtest.h>

#include "eval/experiment.hpp"
#include "runtime/container_pool.hpp"
#include "runtime/keepalive.hpp"
#include "runtime/machine.hpp"
#include "sim/simulator.hpp"

namespace faasbatch::runtime {
namespace {

TEST(FixedKeepAliveTest, ConstantDuration) {
  FixedKeepAlive policy(30 * kSecond);
  policy.record_arrival(0, 0);
  EXPECT_EQ(policy.keep_alive_for(0, kMinute), 30 * kSecond);
  EXPECT_EQ(policy.keep_alive_for(7, 0), 30 * kSecond);
  EXPECT_EQ(policy.name(), "fixed");
  EXPECT_THROW(FixedKeepAlive(0), std::invalid_argument);
}

TEST(HistogramKeepAliveTest, ConservativeWithoutHistory) {
  HistogramKeepAlive::Options options;
  options.cap = 2 * kMinute;
  HistogramKeepAlive policy(options);
  EXPECT_EQ(policy.keep_alive_for(0, 0), options.cap);
  // A couple of samples are still below min_samples.
  policy.record_arrival(0, 0);
  policy.record_arrival(0, kSecond);
  EXPECT_EQ(policy.keep_alive_for(0, kSecond), options.cap);
}

TEST(HistogramKeepAliveTest, LearnsPerFunctionIat) {
  HistogramKeepAlive::Options options;
  options.quantile = 1.0;
  options.floor = kSecond;
  options.cap = kHour;
  options.min_samples = 4;
  HistogramKeepAlive policy(options);
  // Function 0 invoked every 2 s; function 1 every 40 s.
  for (int i = 0; i <= 6; ++i) {
    policy.record_arrival(0, static_cast<SimTime>(i) * 2 * kSecond);
    policy.record_arrival(1, static_cast<SimTime>(i) * 40 * kSecond);
  }
  EXPECT_EQ(policy.samples_for(0), 6u);
  EXPECT_EQ(policy.keep_alive_for(0, 0), 2 * kSecond);
  EXPECT_EQ(policy.keep_alive_for(1, 0), 40 * kSecond);
}

TEST(HistogramKeepAliveTest, FloorAndCapClamp) {
  HistogramKeepAlive::Options options;
  options.floor = 5 * kSecond;
  options.cap = 30 * kSecond;
  options.min_samples = 2;
  HistogramKeepAlive policy(options);
  for (int i = 0; i <= 4; ++i) {
    policy.record_arrival(0, static_cast<SimTime>(i) * 100 * kMillisecond);  // 100 ms IaT
    policy.record_arrival(1, static_cast<SimTime>(i) * 5 * kMinute);         // 5 min IaT
  }
  EXPECT_EQ(policy.keep_alive_for(0, 0), options.floor);
  EXPECT_EQ(policy.keep_alive_for(1, 0), options.cap);
}

TEST(HistogramKeepAliveTest, Validation) {
  HistogramKeepAlive::Options bad;
  bad.quantile = 0.0;
  EXPECT_THROW(HistogramKeepAlive{bad}, std::invalid_argument);
  bad.quantile = 0.99;
  bad.floor = 10 * kSecond;
  bad.cap = kSecond;
  EXPECT_THROW(HistogramKeepAlive{bad}, std::invalid_argument);
}

TEST(PoolKeepAliveIntegrationTest, PolicyControlsReclamation) {
  sim::Simulator sim;
  RuntimeConfig config;
  config.keep_alive = 10 * kMinute;  // fixed default would keep it all run
  Machine machine(sim, config);
  ContainerPool pool(machine);
  HistogramKeepAlive::Options options;
  options.floor = kSecond;
  options.cap = 2 * kSecond;  // everything reclaimed within 2 s idle
  options.min_samples = 1;
  pool.set_keepalive_policy(std::make_unique<HistogramKeepAlive>(options));

  trace::FunctionProfile profile;
  profile.id = 0;
  profile.name = "f";
  pool.note_arrival(0);
  pool.provision(profile, [&pool](Container& c, SimDuration) { pool.release(c); });
  sim.run_until(kMinute);
  EXPECT_EQ(pool.live_containers(), 0u);  // reclaimed at the 2 s cap
}

TEST(ExperimentKeepAliveTest, HistogramPolicyReducesMemory) {
  trace::WorkloadSpec workload_spec;
  workload_spec.invocations = 300;
  workload_spec.seed = 21;
  const trace::Workload workload = trace::synthesize_workload(workload_spec);

  eval::ExperimentSpec fixed;
  fixed.scheduler = schedulers::SchedulerKind::kVanilla;
  const auto fixed_result = eval::run_experiment(fixed, workload);

  eval::ExperimentSpec histogram = fixed;
  histogram.keepalive = eval::KeepAliveKind::kHistogram;
  histogram.keepalive_histogram.floor = kSecond;
  histogram.keepalive_histogram.cap = 5 * kSecond;
  histogram.keepalive_histogram.min_samples = 1;
  const auto histogram_result = eval::run_experiment(histogram, workload);

  EXPECT_EQ(histogram_result.completed, 300u);
  // Aggressive reclamation lowers average memory but costs cold starts.
  EXPECT_LT(histogram_result.memory_avg_mib, fixed_result.memory_avg_mib);
  EXPECT_GE(histogram_result.cold_starts, fixed_result.cold_starts);
}

}  // namespace
}  // namespace faasbatch::runtime
