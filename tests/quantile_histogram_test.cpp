// QuantileHistogram accuracy and contract tests: extracted quantiles
// must match an exact sorted reference within the documented bucket
// tolerance (half a sub-bucket, ~6.7% relative), across scales and
// distributions; values without a logarithm land in the zero bucket.
//
// fb-lint-allow-file(raw-rng): the stdlib distributions only generate
// test data; every assertion compares the histogram against the exact
// sorted reference of the SAME samples, so the sequence's
// implementation-dependence cannot affect the outcome.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics_registry.hpp"
#include "obs/quantile_histogram.hpp"

namespace faasbatch::obs {
namespace {

// Documented worst-case relative error is 1/16 ≈ 6.7%; allow a little
// slack for the rank discretisation between the estimator and the
// reference on small samples.
constexpr double kRelTolerance = 0.09;

/// Exact reference: the ceil(q*n) ranked observation of the sorted data
/// (the same rank convention the histogram documents).
double exact_quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  if (rank == 0) rank = 1;
  if (rank > values.size()) rank = values.size();
  return values[rank - 1];
}

void expect_close(double got, double want, const char* label) {
  if (want == 0.0) {
    EXPECT_EQ(got, 0.0) << label;
    return;
  }
  EXPECT_NEAR(got / want, 1.0, kRelTolerance)
      << label << ": got " << got << " want " << want;
}

class QuantileHistogramTest : public ::testing::Test {
 protected:
  QuantileHistogramTest() { registry_.set_enabled(true); }
  QuantileHistogram& histogram(const char* name = "test_quantiles") {
    return registry_.quantile(name);
  }
  MetricsRegistry registry_;
};

TEST_F(QuantileHistogramTest, DisabledRecordIsNoOp) {
  registry_.set_enabled(false);
  QuantileHistogram& q = histogram();
  q.record(1.0);
  q.record(100.0);
  EXPECT_EQ(q.count(), 0u);
  EXPECT_EQ(q.quantile(0.5), 0.0);
}

TEST_F(QuantileHistogramTest, EmptyHistogramReportsZero) {
  QuantileHistogram& q = histogram();
  EXPECT_EQ(q.quantile(0.5), 0.0);
  const QuantileSummary s = q.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p999, 0.0);
}

TEST_F(QuantileHistogramTest, SingleValueEveryQuantile) {
  QuantileHistogram& q = histogram();
  q.record(42.0);
  for (const double quant : {0.0, 0.5, 0.95, 0.99, 0.999, 1.0}) {
    expect_close(q.quantile(quant), 42.0, "single value");
  }
}

TEST_F(QuantileHistogramTest, UniformMatchesSortedReference) {
  QuantileHistogram& q = histogram();
  std::vector<double> values;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(0.1, 500.0);
  for (int i = 0; i < 20'000; ++i) {
    const double v = dist(rng);
    values.push_back(v);
    q.record(v);
  }
  for (const double quant : {0.5, 0.95, 0.99, 0.999}) {
    expect_close(q.quantile(quant), exact_quantile(values, quant), "uniform");
  }
}

TEST_F(QuantileHistogramTest, LogNormalTailMatchesSortedReference) {
  // Latency-shaped data: heavy right tail across several octaves.
  QuantileHistogram& q = histogram();
  std::vector<double> values;
  std::mt19937_64 rng(11);
  std::lognormal_distribution<double> dist(1.5, 1.2);
  for (int i = 0; i < 50'000; ++i) {
    const double v = dist(rng);
    values.push_back(v);
    q.record(v);
  }
  const QuantileSummary s = q.summary();
  EXPECT_EQ(s.count, values.size());
  expect_close(s.p50, exact_quantile(values, 0.5), "lognormal p50");
  expect_close(s.p95, exact_quantile(values, 0.95), "lognormal p95");
  expect_close(s.p99, exact_quantile(values, 0.99), "lognormal p99");
  expect_close(s.p999, exact_quantile(values, 0.999), "lognormal p999");
  double sum = 0.0;
  for (const double v : values) sum += v;
  EXPECT_NEAR(s.sum, sum, sum * 1e-9);
}

TEST_F(QuantileHistogramTest, BimodalAcrossScales) {
  // Two clusters five orders of magnitude apart — the case fixed-bucket
  // layouts mangle. p50 must sit in the low cluster, p99 in the high.
  QuantileHistogram& q = histogram();
  std::vector<double> values;
  for (int i = 0; i < 960; ++i) {
    const double v = 0.05 + 0.0001 * i;
    values.push_back(v);
    q.record(v);
  }
  for (int i = 0; i < 40; ++i) {
    const double v = 3000.0 + static_cast<double>(i);
    values.push_back(v);
    q.record(v);
  }
  expect_close(q.quantile(0.5), exact_quantile(values, 0.5), "bimodal p50");
  expect_close(q.quantile(0.99), exact_quantile(values, 0.99), "bimodal p99");
}

TEST_F(QuantileHistogramTest, ZeroAndNegativeLandInZeroBucket) {
  QuantileHistogram& q = histogram();
  q.record(0.0);
  q.record(-3.5);
  q.record(std::nan(""));
  EXPECT_EQ(q.count(), 3u);
  EXPECT_EQ(q.quantile(0.5), 0.0);
  // A real value above them keeps its place at the top rank.
  q.record(10.0);
  expect_close(q.quantile(1.0), 10.0, "top rank after zeros");
}

TEST_F(QuantileHistogramTest, ExtremeValuesClampToEdgeBuckets) {
  QuantileHistogram& q = histogram();
  q.record(1e-12);  // below 2^kMinExponent
  q.record(1e15);   // above 2^kMaxExponent
  EXPECT_EQ(q.count(), 2u);
  // Clamped, not dropped: the tiny value reports within the smallest
  // representable bucket (its representative is the geometric midpoint,
  // up to one sub-bucket above the 2^kMinExponent bound), the huge one
  // at least the largest bound.
  EXPECT_GT(q.quantile(0.25), 0.0);
  EXPECT_LE(q.quantile(0.25),
            std::ldexp(1.0, QuantileHistogram::kMinExponent) *
                (1.0 + 1.0 / QuantileHistogram::kSubBuckets));
  EXPECT_GE(q.quantile(1.0), std::ldexp(1.0, QuantileHistogram::kMaxExponent));
}

TEST_F(QuantileHistogramTest, BucketIndexMonotoneAndValueConsistent) {
  // bucket_value(bucket_index(v)) must stay within half a sub-bucket of
  // v, and indices must be monotone in v — the invariants the quantile
  // walk relies on.
  std::size_t last_index = 0;
  for (double v = 1e-5; v < 1e8; v *= 1.37) {
    const std::size_t index = QuantileHistogram::bucket_index(v);
    EXPECT_GE(index, last_index) << "index not monotone at " << v;
    EXPECT_LT(index, QuantileHistogram::kBuckets);
    last_index = index;
    const double rep = QuantileHistogram::bucket_value(index);
    EXPECT_NEAR(rep / v, 1.0, 1.0 / 16.0 + 1e-9)
        << "representative " << rep << " too far from " << v;
  }
}

TEST_F(QuantileHistogramTest, RegistryResetClearsQuantiles) {
  QuantileHistogram& q = histogram();
  q.record(5.0);
  EXPECT_EQ(q.count(), 1u);
  registry_.reset();
  EXPECT_EQ(q.count(), 0u);
  EXPECT_EQ(q.quantile(0.5), 0.0);
}

TEST_F(QuantileHistogramTest, SnapshotAndPrometheusExposeQuantiles) {
  QuantileHistogram& q = histogram("page_ms_quantiles");
  for (int i = 1; i <= 100; ++i) q.record(static_cast<double>(i));
  const Json snapshot = registry_.snapshot();
  ASSERT_TRUE(snapshot.contains("quantiles"));
  const Json& entry = snapshot.at("quantiles").at("page_ms_quantiles");
  EXPECT_EQ(entry.at("count").as_int(), 100);
  expect_close(entry.at("p50").as_double(), 50.0, "snapshot p50");
  const std::string page = registry_.prometheus_text();
  EXPECT_NE(page.find("page_ms_quantiles{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(page.find("page_ms_quantiles_count 100"), std::string::npos);
}

}  // namespace
}  // namespace faasbatch::obs
