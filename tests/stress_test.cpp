// Randomized stress tests: many seeds, all schedulers, full-system
// invariants. These are the "simulation never wedges, leaks, or
// mis-stamps" guarantees, checked over workloads the unit tests don't
// enumerate by hand.
#include <gtest/gtest.h>

#include "eval/experiment.hpp"
#include "trace/workload.hpp"

namespace faasbatch::eval {
namespace {

struct StressCase {
  std::uint64_t seed;
  schedulers::SchedulerKind scheduler;
  trace::FunctionKind kind;
};

class SchedulerStressTest : public ::testing::TestWithParam<StressCase> {};

TEST_P(SchedulerStressTest, FullSystemInvariants) {
  const StressCase param = GetParam();
  trace::WorkloadSpec workload_spec;
  workload_spec.kind = param.kind;
  workload_spec.invocations = 150;
  workload_spec.num_functions = 6;
  workload_spec.seed = param.seed;
  const trace::Workload workload = trace::synthesize_workload(workload_spec);

  ExperimentSpec spec;
  spec.scheduler = param.scheduler;
  spec.scheduler_options.kraken_default_slo_ms = 2000.0;
  // Vary a couple of knobs off the seed to widen coverage.
  spec.scheduler_options.dispatch_window =
      from_millis(50.0 + static_cast<double>(param.seed % 5) * 100.0);
  if (param.seed % 3 == 0) spec.runtime.cold_start_failure_rate = 0.2;
  if (param.seed % 2 == 0) spec.scheduler_options.faasbatch_max_group = 16;

  const ExperimentResult result = run_experiment(spec, workload);

  // 1. Conservation: every invocation completes exactly once.
  EXPECT_EQ(result.completed, workload.events.size());

  // 2. Phase stamps are ordered and finite for every record.
  for (const core::InvocationRecord& record : result.records) {
    EXPECT_TRUE(record.completed);
    EXPECT_GE(record.dispatched, record.arrival);
    EXPECT_GE(record.exec_start, record.dispatched);
    EXPECT_GT(record.exec_end, record.exec_start);
    EXPECT_GE(record.cold_start, 0);
    EXPECT_LE(record.exec_end, result.makespan);
  }

  // 3. Resource sanity.
  EXPECT_GT(result.containers_provisioned, 0u);
  EXPECT_GE(result.warm_hits + result.containers_provisioned,
            0u);  // counters consistent
  EXPECT_GE(result.memory_peak_mib, result.memory_avg_mib);
  EXPECT_GE(result.memory_avg_mib, 512.0);  // platform base always resident
  EXPECT_GT(result.cpu_utilization, 0.0);
  EXPECT_LE(result.cpu_utilization, 1.0 + 1e-9);

  // 4. Aggregate latency counts match the record count.
  EXPECT_EQ(result.latency.count(), workload.events.size());
  EXPECT_EQ(result.response_ms.count(), workload.events.size());
}

std::vector<StressCase> stress_cases() {
  std::vector<StressCase> cases;
  const schedulers::SchedulerKind kinds[] = {
      schedulers::SchedulerKind::kVanilla, schedulers::SchedulerKind::kKraken,
      schedulers::SchedulerKind::kSfs, schedulers::SchedulerKind::kFaasBatch};
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (const auto kind : kinds) {
      cases.push_back({seed, kind, trace::FunctionKind::kCpuIntensive});
      cases.push_back({seed + 100, kind, trace::FunctionKind::kIo});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerStressTest,
                         ::testing::ValuesIn(stress_cases()));

TEST(MemoryDrainTest, MemoryReturnsToPlatformBaseAfterKeepAlive) {
  // After the run AND the keep-alive horizon, every container is
  // reclaimed and resident memory returns exactly to the platform base —
  // the accounting-leak detector for the whole runtime.
  trace::WorkloadSpec workload_spec;
  workload_spec.invocations = 120;
  workload_spec.seed = 31;
  const trace::Workload workload = trace::synthesize_workload(workload_spec);

  for (const auto kind : {schedulers::SchedulerKind::kVanilla,
                          schedulers::SchedulerKind::kFaasBatch}) {
    sim::Simulator simulator;
    runtime::RuntimeConfig config;
    config.keep_alive = 30 * kSecond;
    runtime::Machine machine(simulator, config);
    runtime::ContainerPool pool(machine);
    std::vector<core::InvocationRecord> records(workload.events.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
      records[i].id = static_cast<InvocationId>(i);
      records[i].function = workload.events[i].function;
      records[i].arrival = workload.events[i].arrival;
    }
    std::size_t completed = 0;
    schedulers::SchedulerContext context{
        simulator, machine, pool, workload, storage::ClientCostModel{}, records,
        [&completed](InvocationId) { ++completed; }};
    auto scheduler = schedulers::make_scheduler(kind, context, {});
    for (std::size_t i = 0; i < workload.events.size(); ++i) {
      const InvocationId id = static_cast<InvocationId>(i);
      simulator.schedule_at(workload.events[i].arrival,
                            [&scheduler, id] { scheduler->on_arrival(id); });
    }
    simulator.run();  // drains execution AND keep-alive expiries
    EXPECT_EQ(completed, workload.events.size());
    EXPECT_EQ(pool.live_containers(), 0u) << schedulers::scheduler_kind_name(kind);
    EXPECT_EQ(machine.memory_in_use(), config.platform_base_memory)
        << schedulers::scheduler_kind_name(kind);
  }
}

TEST(MaxGroupTest, BoundedGroupsSplitContainers) {
  trace::Workload workload;
  workload.kind = trace::FunctionKind::kCpuIntensive;
  trace::FunctionProfile profile;
  profile.id = 0;
  profile.name = "f";
  profile.duration_ms = 100.0;
  workload.functions.push_back(profile);
  for (std::size_t i = 0; i < 40; ++i) {
    workload.events.push_back(trace::TraceEvent{0, 0, 100.0, 25});
  }
  workload.horizon = kMinute;

  ExperimentSpec unbounded;
  unbounded.scheduler = schedulers::SchedulerKind::kFaasBatch;
  EXPECT_EQ(run_experiment(unbounded, workload).containers_provisioned, 1u);

  ExperimentSpec bounded = unbounded;
  bounded.scheduler_options.faasbatch_max_group = 10;
  const auto result = run_experiment(bounded, workload);
  EXPECT_EQ(result.containers_provisioned, 4u);
  EXPECT_EQ(result.completed, 40u);
}

TEST(MaxGroupTest, BoundOfOneDegradesTowardVanilla) {
  trace::Workload workload;
  workload.kind = trace::FunctionKind::kCpuIntensive;
  trace::FunctionProfile profile;
  profile.id = 0;
  profile.name = "f";
  profile.duration_ms = 2000.0;
  workload.functions.push_back(profile);
  for (std::size_t i = 0; i < 8; ++i) {
    workload.events.push_back(trace::TraceEvent{0, 0, 2000.0, 30});
  }
  workload.horizon = kMinute;

  ExperimentSpec spec;
  spec.scheduler = schedulers::SchedulerKind::kFaasBatch;
  spec.scheduler_options.faasbatch_max_group = 1;
  const auto result = run_experiment(spec, workload);
  // One container per invocation, exactly like Vanilla under a burst.
  EXPECT_EQ(result.containers_provisioned, 8u);
}

}  // namespace
}  // namespace faasbatch::eval
