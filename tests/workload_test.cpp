// Tests for workload synthesis: function tables, popularity skew,
// per-invocation durations, determinism, and the Fig. 2 day patterns.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "trace/duration_model.hpp"
#include "trace/workload.hpp"

namespace faasbatch::trace {
namespace {

WorkloadSpec cpu_spec() {
  WorkloadSpec spec;
  spec.kind = FunctionKind::kCpuIntensive;
  spec.invocations = 800;
  spec.num_functions = 10;
  spec.seed = 42;
  return spec;
}

TEST(WorkloadTest, FunctionTableShape) {
  const Workload w = synthesize_workload(cpu_spec());
  ASSERT_EQ(w.functions.size(), 10u);
  for (std::size_t i = 0; i < w.functions.size(); ++i) {
    EXPECT_EQ(w.functions[i].id, static_cast<FunctionId>(i));
    EXPECT_EQ(w.functions[i].kind, FunctionKind::kCpuIntensive);
    EXPECT_GT(w.functions[i].duration_ms, 0.0);
    EXPECT_GE(w.functions[i].fib_n, 1);
  }
}

TEST(WorkloadTest, EventsSortedAndInRange) {
  const Workload w = synthesize_workload(cpu_spec());
  EXPECT_EQ(w.events.size(), 800u);
  SimTime last = 0;
  for (const TraceEvent& e : w.events) {
    EXPECT_GE(e.arrival, last);
    last = e.arrival;
    EXPECT_LT(e.arrival, w.horizon);
    EXPECT_LT(e.function, w.functions.size());
  }
}

TEST(WorkloadTest, HotFunctionsDominate) {
  WorkloadSpec spec = cpu_spec();
  spec.invocations = 5000;
  const Workload w = synthesize_workload(spec);
  const std::size_t hot_count = 2;  // 20% of 10
  std::size_t hot_invocations = 0;
  for (const TraceEvent& e : w.events) {
    if (e.function < hot_count) ++hot_invocations;
  }
  // Paper: >99% of invocations land on the popular 20% of functions.
  EXPECT_NEAR(static_cast<double>(hot_invocations) / w.events.size(), 0.99, 0.01);
}

TEST(WorkloadTest, CpuEventDurationsFollowFig9) {
  WorkloadSpec spec = cpu_spec();
  spec.invocations = 20000;
  const Workload w = synthesize_workload(spec);
  const DurationModel model;
  std::size_t in_first_bucket = 0;
  for (const TraceEvent& e : w.events) {
    EXPECT_GT(e.duration_ms, 0.0);
    EXPECT_GE(e.fib_n, 1);
    if (model.bucket_of(e.duration_ms) == 0) ++in_first_bucket;
  }
  // Snapping to the fib curve distorts the distribution a little, so
  // allow a generous band around the paper's 55.13%.
  EXPECT_NEAR(static_cast<double>(in_first_bucket) / w.events.size(), 0.5513, 0.08);
}

TEST(WorkloadTest, CpuEventDurationsSnapToFibCurve) {
  const Workload w = synthesize_workload(cpu_spec());
  const FibCostModel fib;
  for (const TraceEvent& e : w.events) {
    EXPECT_DOUBLE_EQ(e.duration_ms, fib.duration_ms(e.fib_n));
  }
}

TEST(WorkloadTest, IoWorkloadHasClientHashes) {
  WorkloadSpec spec = cpu_spec();
  spec.kind = FunctionKind::kIo;
  spec.invocations = 400;
  const Workload w = synthesize_workload(spec);
  std::map<std::uint64_t, int> hashes;
  for (const FunctionProfile& f : w.functions) {
    EXPECT_EQ(f.kind, FunctionKind::kIo);
    EXPECT_NE(f.client_args_hash, 0u);
    ++hashes[f.client_args_hash];
  }
  // Every function has distinct credentials.
  EXPECT_EQ(hashes.size(), w.functions.size());
  for (const TraceEvent& e : w.events) {
    EXPECT_GE(e.duration_ms, 5.0);
    EXPECT_LE(e.duration_ms, 20.0);
  }
}

TEST(WorkloadTest, DeterministicForSeed) {
  const Workload a = synthesize_workload(cpu_spec());
  const Workload b = synthesize_workload(cpu_spec());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].arrival, b.events[i].arrival);
    EXPECT_EQ(a.events[i].function, b.events[i].function);
    EXPECT_DOUBLE_EQ(a.events[i].duration_ms, b.events[i].duration_ms);
  }
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  WorkloadSpec other = cpu_spec();
  other.seed = 43;
  const Workload a = synthesize_workload(cpu_spec());
  const Workload b = synthesize_workload(other);
  bool any_different = false;
  for (std::size_t i = 0; i < a.events.size() && !any_different; ++i) {
    any_different = a.events[i].arrival != b.events[i].arrival;
  }
  EXPECT_TRUE(any_different);
}

TEST(WorkloadTest, Validation) {
  WorkloadSpec spec = cpu_spec();
  spec.num_functions = 0;
  EXPECT_THROW(synthesize_workload(spec), std::invalid_argument);
}

TEST(DayPatternTest, MeetsMinimumInvocations) {
  const auto patterns = synthesize_day_patterns(3, 1000, 7);
  ASSERT_EQ(patterns.size(), 3u);
  for (const auto& arrivals : patterns) {
    EXPECT_GE(arrivals.size(), 1000u);
    EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
    EXPECT_LT(arrivals.back(), kHour * 24);
  }
}

TEST(DayPatternTest, PatternsDifferAcrossFunctions) {
  const auto patterns = synthesize_day_patterns(2, 1000, 9);
  EXPECT_NE(patterns[0], patterns[1]);
}

// Property sweep over workload kinds and sizes.
class WorkloadSweepTest
    : public ::testing::TestWithParam<std::tuple<FunctionKind, std::size_t>> {};

TEST_P(WorkloadSweepTest, InvariantsHold) {
  const auto [kind, count] = GetParam();
  WorkloadSpec spec;
  spec.kind = kind;
  spec.invocations = count;
  spec.seed = count * 17 + 5;
  const Workload w = synthesize_workload(spec);
  EXPECT_EQ(w.kind, kind);
  EXPECT_EQ(w.events.size(), count);
  EXPECT_TRUE(std::is_sorted(
      w.events.begin(), w.events.end(),
      [](const TraceEvent& a, const TraceEvent& b) { return a.arrival < b.arrival; }));
  for (const TraceEvent& e : w.events) {
    EXPECT_LT(e.function, w.functions.size());
    EXPECT_GT(e.duration_ms, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkloadSweepTest,
    ::testing::Combine(::testing::Values(FunctionKind::kCpuIntensive, FunctionKind::kIo),
                       ::testing::Values<std::size_t>(1, 40, 400, 800)));

}  // namespace
}  // namespace faasbatch::trace
