// Tests for the Azure Functions trace-format reader and converter.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "trace/azure_format.hpp"

namespace faasbatch::trace {
namespace {

std::string small_invocations_csv() {
  // A 6-minute file (truncated day) with two functions.
  std::ostringstream os;
  os << "HashOwner,HashApp,HashFunction,Trigger,1,2,3,4,5,6\n"
     << "o1,a1,f1,http,0,10,5,0,0,0\n"
     << "o1,a1,f2,timer,1,0,0,0,2,0\n"
     << "o2,a2,f3,queue,0,0,0,0,0,0\n";
  return os.str();
}

std::string small_durations_csv() {
  std::ostringstream os;
  os << "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum,"
        "percentile_Average_25,percentile_Average_50,percentile_Average_75,"
        "percentile_Average_99,percentile_Average_100\n"
     << "o1,a1,f1,120,100,10,900,60,100,200,700,900\n"
     << "o1,a1,f2,40,10,5,80,20,35,50,75,80\n";
  return os.str();
}

TEST(AzureFormatTest, ReadsInvocationRows) {
  std::istringstream is(small_invocations_csv());
  const auto rows = read_azure_invocations(is);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].owner, "o1");
  EXPECT_EQ(rows[0].function, "f1");
  EXPECT_EQ(rows[0].trigger, "http");
  ASSERT_EQ(rows[0].per_minute.size(), 6u);
  EXPECT_EQ(rows[0].per_minute[1], 10u);
  EXPECT_EQ(rows[0].total(), 15u);
  EXPECT_EQ(rows[2].total(), 0u);
}

TEST(AzureFormatTest, ReadsDurationRows) {
  std::istringstream is(small_durations_csv());
  const auto rows = read_azure_durations(is);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].p50_ms, 100.0);
  EXPECT_DOUBLE_EQ(rows[0].p99_ms, 700.0);
  EXPECT_DOUBLE_EQ(rows[1].minimum_ms, 5.0);
}

TEST(AzureFormatTest, RejectsBadHeaders) {
  std::istringstream bad1("NotTheHeader,x,y\n");
  EXPECT_THROW(read_azure_invocations(bad1), std::runtime_error);
  std::istringstream bad2("HashOwner,HashApp,HashFunction,Average\n");
  EXPECT_THROW(read_azure_durations(bad2), std::runtime_error);
  std::istringstream empty("");
  EXPECT_THROW(read_azure_invocations(empty), std::runtime_error);
}

TEST(AzureFormatTest, RejectsMalformedRows) {
  std::istringstream short_row(
      "HashOwner,HashApp,HashFunction,Trigger,1,2\no1,a1,f1,http,5\n");
  EXPECT_THROW(read_azure_invocations(short_row), std::runtime_error);
  std::istringstream bad_count(
      "HashOwner,HashApp,HashFunction,Trigger,1\no1,a1,f1,http,NaNcy\n");
  EXPECT_THROW(read_azure_invocations(bad_count), std::runtime_error);
}

TEST(AzureConvertTest, WindowExtractionAndCounts) {
  std::istringstream inv_is(small_invocations_csv());
  std::istringstream dur_is(small_durations_csv());
  const auto invocations = read_azure_invocations(inv_is);
  const auto durations = read_azure_durations(dur_is);

  AzureConversionOptions options;
  options.start_minute = 1;  // minute "2" of the file
  options.minutes = 2;
  const Workload workload = convert_azure_trace(invocations, durations, options);
  // f1 contributes 10+5; f2 contributes 0 in minutes 2..3; f3 silent.
  EXPECT_EQ(workload.events.size(), 15u);
  EXPECT_EQ(workload.functions.size(), 1u);
  EXPECT_EQ(workload.horizon, 2 * kMinute);
  for (const auto& event : workload.events) {
    EXPECT_GE(event.arrival, 0);
    EXPECT_LT(event.arrival, 2 * kMinute);
    EXPECT_GT(event.duration_ms, 0.0);
  }
  EXPECT_TRUE(std::is_sorted(workload.events.begin(), workload.events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.arrival < b.arrival;
                             }));
}

TEST(AzureConvertTest, MaxInvocationsCapApplies) {
  std::istringstream inv_is(small_invocations_csv());
  std::istringstream dur_is(small_durations_csv());
  const auto invocations = read_azure_invocations(inv_is);
  const auto durations = read_azure_durations(dur_is);
  AzureConversionOptions options;
  options.start_minute = 0;
  options.minutes = 6;
  options.max_invocations = 4;  // paper: "first 400 invocations"
  const Workload workload = convert_azure_trace(invocations, durations, options);
  EXPECT_EQ(workload.events.size(), 4u);
}

TEST(AzureConvertTest, IoKindGetsClientHashes) {
  std::istringstream inv_is(small_invocations_csv());
  std::istringstream dur_is(small_durations_csv());
  const auto invocations = read_azure_invocations(inv_is);
  const auto durations = read_azure_durations(dur_is);
  AzureConversionOptions options;
  options.minutes = 6;
  options.kind = FunctionKind::kIo;
  const Workload workload = convert_azure_trace(invocations, durations, options);
  for (const auto& profile : workload.functions) {
    EXPECT_EQ(profile.kind, FunctionKind::kIo);
    EXPECT_NE(profile.client_args_hash, 0u);
  }
}

TEST(AzureConvertTest, MissingDurationsFallBack) {
  std::istringstream inv_is(small_invocations_csv());
  const auto invocations = read_azure_invocations(inv_is);
  AzureConversionOptions options;
  options.minutes = 6;
  const Workload workload = convert_azure_trace(invocations, {}, options);
  EXPECT_FALSE(workload.events.empty());
  for (const auto& event : workload.events) EXPECT_GT(event.duration_ms, 0.0);
}

TEST(AzureConvertTest, Validation) {
  AzureConversionOptions options;
  options.minutes = 0;
  EXPECT_THROW(convert_azure_trace({}, {}, options), std::invalid_argument);
}

TEST(AzureSynthesizeTest, RoundTripsThroughReaders) {
  std::ostringstream inv_os, dur_os;
  write_synthetic_azure_files(inv_os, dur_os, 5, 11);
  std::istringstream inv_is(inv_os.str()), dur_is(dur_os.str());
  const auto invocations = read_azure_invocations(inv_is);
  const auto durations = read_azure_durations(dur_is);
  ASSERT_EQ(invocations.size(), 5u);
  ASSERT_EQ(durations.size(), 5u);
  for (const auto& row : invocations) EXPECT_EQ(row.per_minute.size(), 1440u);

  // Find a busy minute and convert it.
  std::size_t busiest = 0;
  std::uint64_t best = 0;
  for (std::size_t m = 0; m < 1440; ++m) {
    std::uint64_t total = 0;
    for (const auto& row : invocations) total += row.per_minute[m];
    if (total > best) {
      best = total;
      busiest = m;
    }
  }
  ASSERT_GT(best, 0u);
  AzureConversionOptions options;
  options.start_minute = busiest;
  options.minutes = 1;
  const Workload workload = convert_azure_trace(invocations, durations, options);
  EXPECT_EQ(workload.events.size(), best);
}

TEST(AzureSynthesizeTest, DeterministicForSeed) {
  std::ostringstream a_inv, a_dur, b_inv, b_dur;
  write_synthetic_azure_files(a_inv, a_dur, 3, 7);
  write_synthetic_azure_files(b_inv, b_dur, 3, 7);
  EXPECT_EQ(a_inv.str(), b_inv.str());
  EXPECT_EQ(a_dur.str(), b_dur.str());
}

}  // namespace
}  // namespace faasbatch::trace
