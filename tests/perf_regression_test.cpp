// Perf-regression floors for the dispatch pipeline (ctest -L perf).
//
// Every assertion here is SELF-RELATIVE — a ratio of two timings taken
// back-to-back in the same process — with a deliberately generous 3x
// threshold, so the tests hold on any hardware (including 1-vCPU CI
// runners where wall-clock benchmarking is noisy) and only trip on real
// structural regressions: a lock added to the ring, a syscall added to
// the admission path, a wakeup storm reintroduced.
//
// Absolute numbers are guarded separately by scripts/check_perf.py
// against bench/bench_baseline.json (registered as the `perf_check`
// ctest, also under the perf label).
//
// Skipped under ASan/TSan: sanitizer instrumentation distorts the two
// sides of a ratio unevenly (atomics cost far more under TSan than a
// parked mutex), so the floors are meaningless there.

#include <chrono>
#include <deque>
#include <future>
#include <latch>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "live/dispatch/mpsc_ring.hpp"
#include "live/live_platform.hpp"

namespace faasbatch {
namespace {

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif

/// The regression floor: the "fast" side must stay within 3x of the
/// "slow" side even when noise swings against it.
constexpr double kFloorFactor = 3.0;

double seconds_since(ClockTime start) {
  return std::chrono::duration<double>(Clock::system().now() - start).count();
}

template <typename Fn>
double best_seconds_of(int reps, Fn&& fn) {
  double best = fn();
  for (int r = 1; r < reps; ++r) best = std::min(best, fn());
  return best;
}

// ---------------------------------------------------------------------
// MpscRing vs mutex+deque: the ring replaced the mutex-guarded queue on
// the admission path; it must never degrade to worse than 3x the thing
// it replaced.
// ---------------------------------------------------------------------

constexpr std::size_t kRingOps = 1 << 19;

double time_ring_ops() {
  live::dispatch::MpscRing<std::uint64_t> ring(1024);
  const ClockTime start = Clock::system().now();
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < kRingOps; i += 64) {
    for (std::size_t j = 0; j < 64; ++j) {
      std::uint64_t v = i + j;
      ring.try_push(v);
    }
    while (ring.try_pop(out)) {
    }
  }
  const double elapsed = seconds_since(start);
  EXPECT_EQ(out, kRingOps - 1);  // defeat dead-code elimination
  return elapsed;
}

double time_mutex_deque_ops() {
  std::mutex mu;
  std::deque<std::uint64_t> queue;
  const ClockTime start = Clock::system().now();
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < kRingOps; i += 64) {
    for (std::size_t j = 0; j < 64; ++j) {
      std::lock_guard<std::mutex> lock(mu);
      queue.push_back(i + j);
    }
    while (true) {
      std::lock_guard<std::mutex> lock(mu);
      if (queue.empty()) break;
      out = queue.front();
      queue.pop_front();
    }
  }
  const double elapsed = seconds_since(start);
  EXPECT_EQ(out, kRingOps - 1);
  return elapsed;
}

TEST(PerfRegressionTest, MpscRingKeepsUpWithMutexDeque) {
  if (kSanitized) GTEST_SKIP() << "ratio floors are meaningless under sanitizers";
  const double ring = best_seconds_of(3, time_ring_ops);
  const double mutexed = best_seconds_of(3, time_mutex_deque_ops);
  const double ring_ops = static_cast<double>(kRingOps) / ring;
  const double mutex_ops = static_cast<double>(kRingOps) / mutexed;
  // The ring is normally faster outright; 3x slower means a lock or an
  // allocation crept into try_push/try_pop.
  EXPECT_GE(ring_ops, mutex_ops / kFloorFactor)
      << "MpscRing " << ring_ops << " ops/s vs mutex+deque " << mutex_ops
      << " ops/s";
}

// ---------------------------------------------------------------------
// Sharded vs single-queue admission: invoke() throughput with windows
// pinned shut (VirtualClock never advances), as in bench_dispatch's
// invoke_path cells.
// ---------------------------------------------------------------------

constexpr std::size_t kProducers = 4;
constexpr std::size_t kPerProducer = 2000;
constexpr std::size_t kFunctions = 4;

double time_invoke_path(live::DispatchMode mode) {
  VirtualClock clock;  // pinned: windows never flush during submission
  live::LivePlatformOptions options;
  options.policy = live::LivePolicy::kFaasBatch;
  options.clock = &clock;
  options.dispatch = mode;
  options.shards = 8;
  options.shard_ring_capacity = kProducers * kPerProducer;
  live::LivePlatform platform(options);
  std::vector<std::string> names;
  for (std::size_t f = 0; f < kFunctions; ++f) {
    names.push_back("f" + std::to_string(f));
    platform.register_function(names.back(), [](live::FunctionContext&) {});
  }

  std::vector<ClockTime> starts(kProducers), stops(kProducers);
  std::vector<std::vector<std::future<live::InvocationReport>>> futures(kProducers);
  std::latch gate(kProducers);
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kProducers; ++p) {
    futures[p].reserve(kPerProducer);
    threads.emplace_back([&, p] {
      gate.arrive_and_wait();
      starts[p] = Clock::system().now();
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        futures[p].push_back(platform.invoke(names[(p + i) % kFunctions]));
      }
      stops[p] = Clock::system().now();
    });
  }
  for (auto& t : threads) t.join();
  platform.shutdown();
  platform.drain();
  for (auto& lane : futures) {
    for (auto& f : lane) {
      EXPECT_EQ(f.get().status, live::InvocationStatus::kOk);
    }
  }
  const ClockTime first = *std::min_element(starts.begin(), starts.end());
  const ClockTime last = *std::max_element(stops.begin(), stops.end());
  return std::chrono::duration<double>(last - first).count();
}

TEST(PerfRegressionTest, ShardedAdmissionKeepsUpWithSingleQueue) {
  if (kSanitized) GTEST_SKIP() << "ratio floors are meaningless under sanitizers";
  const double sharded = best_seconds_of(
      3, [] { return time_invoke_path(live::DispatchMode::kSharded); });
  const double single = best_seconds_of(
      3, [] { return time_invoke_path(live::DispatchMode::kSingleQueue); });
  constexpr double kTotal = static_cast<double>(kProducers * kPerProducer);
  const double sharded_ips = kTotal / sharded;
  const double single_ips = kTotal / single;
  // On multi-core hosts sharded admission is >=2x faster; on a 1-vCPU
  // runner the two are comparable. 3x slower means the lock-free path
  // regressed into taking the platform mutex (or worse).
  EXPECT_GE(sharded_ips, single_ips / kFloorFactor)
      << "sharded " << sharded_ips << " inv/s vs single-queue " << single_ips
      << " inv/s";
}

}  // namespace
}  // namespace faasbatch
