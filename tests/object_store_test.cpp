// Tests for the in-memory object store.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "storage/object_store.hpp"

namespace faasbatch::storage {
namespace {

TEST(ObjectStoreTest, PutGetRoundTrip) {
  ObjectStore store;
  store.put("a", "hello");
  const auto value = store.get("a");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "hello");
}

TEST(ObjectStoreTest, GetMissingReturnsNullopt) {
  ObjectStore store;
  EXPECT_FALSE(store.get("missing").has_value());
  EXPECT_EQ(store.stats().misses, 1u);
}

TEST(ObjectStoreTest, PutReplaces) {
  ObjectStore store;
  store.put("k", "v1");
  store.put("k", "longer-value");
  EXPECT_EQ(*store.get("k"), "longer-value");
  EXPECT_EQ(store.object_count(), 1u);
  EXPECT_EQ(store.total_bytes(), static_cast<Bytes>(12));
}

TEST(ObjectStoreTest, RemoveTracksBytes) {
  ObjectStore store;
  store.put("a", "12345");
  store.put("b", "123");
  EXPECT_EQ(store.total_bytes(), 8);
  EXPECT_TRUE(store.remove("a"));
  EXPECT_EQ(store.total_bytes(), 3);
  EXPECT_FALSE(store.remove("a"));
  EXPECT_FALSE(store.exists("a"));
  EXPECT_TRUE(store.exists("b"));
}

TEST(ObjectStoreTest, StatsCountOperations) {
  ObjectStore store;
  store.put("a", "x");
  store.get("a");
  store.get("nope");
  store.remove("a");
  store.remove("a");
  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.gets, 2u);
  EXPECT_EQ(stats.deletes, 2u);
  EXPECT_EQ(stats.misses, 2u);  // one get miss + one delete miss
}

TEST(ObjectStoreTest, OpLatencyModelScalesWithSize) {
  OpLatencyModel model;
  EXPECT_EQ(model.op_latency(0), model.base);
  EXPECT_GT(model.op_latency(from_mib(10.0)), model.op_latency(from_mib(1.0)));
  EXPECT_EQ(model.op_latency(kMiB), model.base + model.per_mib);
}

TEST(ObjectStoreTest, ConcurrentAccessIsSafe) {
  ObjectStore store;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "k" + std::to_string((t * kOpsPerThread + i) % 32);
        store.put(key, std::string(16, 'a'));
        (void)store.get(key);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(store.stats().puts, static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  EXPECT_LE(store.object_count(), 32u);
}

}  // namespace
}  // namespace faasbatch::storage
