// Reference-model tests: the fast implementations are validated against
// slow-but-obviously-correct models over randomized operation sequences.
//
//  * EventQueue vs std::multimap (ordering + cancellation semantics)
//  * CpuScheduler vs a small-step fluid integrator (finish times under
//    max-min fair sharing with per-task and per-group caps)
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "sim/cpu.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace faasbatch::sim {
namespace {

// ---- EventQueue vs multimap reference ----------------------------------

class EventQueueReferenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueReferenceTest, MatchesMultimapSemantics) {
  Rng rng(GetParam());
  EventQueue queue;
  // Reference: (time, seq) -> payload; cancellation removes the entry.
  std::multimap<std::pair<SimTime, std::uint64_t>, int> reference;
  std::map<EventId, std::multimap<std::pair<SimTime, std::uint64_t>, int>::iterator>
      by_id;
  std::uint64_t seq = 0;
  std::vector<int> fired;
  std::vector<int> expected;
  int payload = 0;

  for (int step = 0; step < 2000; ++step) {
    const double action = rng.uniform();
    if (action < 0.55) {
      // Insert.
      const SimTime t = rng.uniform_int(0, 500);
      const int p = payload++;
      const EventId id = queue.push(t, [&fired, p] { fired.push_back(p); });
      by_id[id] = reference.emplace(std::make_pair(t, seq++), p);
    } else if (action < 0.75 && !by_id.empty()) {
      // Cancel a random live event.
      auto it = by_id.begin();
      std::advance(it, static_cast<long>(rng.uniform_int(
                           0, static_cast<std::int64_t>(by_id.size()) - 1)));
      EXPECT_TRUE(queue.cancel(it->first));
      reference.erase(it->second);
      by_id.erase(it);
    } else if (!reference.empty()) {
      // Pop one event; both structures must agree on payload order.
      ASSERT_FALSE(queue.empty());
      auto entry = queue.pop();
      entry.action();
      auto ref_it = reference.begin();
      expected.push_back(ref_it->second);
      // Drop the id mapping for the popped reference entry.
      for (auto id_it = by_id.begin(); id_it != by_id.end(); ++id_it) {
        if (id_it->second == ref_it) {
          by_id.erase(id_it);
          break;
        }
      }
      reference.erase(ref_it);
    }
  }
  // Drain the rest.
  while (!queue.empty()) {
    queue.pop().action();
    expected.push_back(reference.begin()->second);
    reference.erase(reference.begin());
  }
  EXPECT_EQ(fired, expected);
  EXPECT_TRUE(reference.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueReferenceTest,
                         ::testing::Values<std::uint64_t>(1, 7, 42, 1234, 9999));

// ---- CpuScheduler vs fluid integrator -----------------------------------

struct FluidTask {
  double work;
  double cap;
  int group;  // -1 = none
};

/// Brute-force fluid reference: advances in tiny fixed steps, computing
/// max-min fair rates by progressive filling at every step. O(steps *
/// n^2) — only viable for tiny cases, which is the point.
std::vector<double> fluid_finish_times(std::vector<FluidTask> tasks,
                                       const std::vector<double>& group_caps,
                                       double cores, double dt = 1e-4) {
  std::vector<double> remaining;
  remaining.reserve(tasks.size());
  for (const auto& task : tasks) remaining.push_back(task.work);
  std::vector<double> finish(tasks.size(), 0.0);
  double now = 0.0;
  std::size_t live = tasks.size();
  while (live > 0 && now < 1e4) {
    // Progressive filling: raise a global water level; task rate =
    // min(level, task cap, group share). Approximate the group share by
    // water-filling the group allocation across members each step.
    // Compute per-group demand first.
    std::vector<double> rate(tasks.size(), 0.0);
    // Units: groups and free tasks (mirrors the implementation's model;
    // the reference point is the *within-unit* and *capacity* math).
    std::vector<double> unit_cap;
    std::vector<std::vector<std::size_t>> unit_members;
    std::map<int, std::size_t> group_unit;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (remaining[i] <= 0.0) continue;
      if (tasks[i].group < 0) {
        unit_cap.push_back(tasks[i].cap);
        unit_members.push_back({i});
      } else {
        auto [it, inserted] = group_unit.try_emplace(tasks[i].group, unit_cap.size());
        if (inserted) {
          unit_cap.push_back(0.0);
          unit_members.push_back({});
        }
        unit_members[it->second].push_back(i);
      }
    }
    for (const auto& [group, unit] : group_unit) {
      double demand = 0.0;
      for (std::size_t member : unit_members[unit]) demand += tasks[member].cap;
      unit_cap[unit] = std::min(group_caps[static_cast<std::size_t>(group)], demand);
    }
    // Water-fill capacity across units.
    std::vector<std::size_t> order(unit_cap.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&unit_cap](std::size_t a, std::size_t b) {
      return unit_cap[a] < unit_cap[b];
    });
    double capacity = cores;
    std::vector<double> unit_alloc(unit_cap.size(), 0.0);
    for (std::size_t k = 0; k < order.size(); ++k) {
      const std::size_t u = order[k];
      const double share = capacity / static_cast<double>(order.size() - k);
      unit_alloc[u] = std::min(unit_cap[u], share);
      capacity -= unit_alloc[u];
    }
    // Water-fill within each unit.
    for (std::size_t u = 0; u < unit_members.size(); ++u) {
      auto members = unit_members[u];
      std::sort(members.begin(), members.end(),
                [&tasks](std::size_t a, std::size_t b) {
                  return tasks[a].cap < tasks[b].cap;
                });
      double alloc = unit_alloc[u];
      for (std::size_t k = 0; k < members.size(); ++k) {
        const double share = alloc / static_cast<double>(members.size() - k);
        rate[members[k]] = std::min(tasks[members[k]].cap, share);
        alloc -= rate[members[k]];
      }
    }
    // Advance.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (remaining[i] <= 0.0) continue;
      remaining[i] -= rate[i] * dt;
      if (remaining[i] <= 0.0) {
        finish[i] = now + dt;
        --live;
      }
    }
    now += dt;
  }
  return finish;
}

struct CpuCase {
  double cores;
  std::vector<FluidTask> tasks;
  std::vector<double> group_caps;
};

class CpuReferenceTest : public ::testing::TestWithParam<int> {};

TEST_P(CpuReferenceTest, FinishTimesMatchFluidReference) {
  // Build a randomized small case from the seed.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1299709);
  CpuCase test_case;
  test_case.cores = 1.0 + static_cast<double>(rng.uniform_int(0, 7));
  const int groups = static_cast<int>(rng.uniform_int(0, 2));
  for (int g = 0; g < groups; ++g) {
    test_case.group_caps.push_back(0.5 + rng.uniform() * 4.0);
  }
  const int n = static_cast<int>(rng.uniform_int(2, 6));
  for (int i = 0; i < n; ++i) {
    FluidTask task;
    task.work = 0.1 + rng.uniform() * 2.0;
    task.cap = 0.25 + rng.uniform() * 1.25;
    task.group = groups == 0 ? -1 : static_cast<int>(rng.uniform_int(-1, groups - 1));
    test_case.tasks.push_back(task);
  }

  const std::vector<double> expected =
      fluid_finish_times(test_case.tasks, test_case.group_caps, test_case.cores);

  Simulator sim;
  CpuScheduler cpu(sim, test_case.cores);
  std::vector<CpuScheduler::GroupId> group_ids;
  for (const double cap : test_case.group_caps) {
    group_ids.push_back(cpu.create_group(cap));
  }
  std::vector<double> actual(test_case.tasks.size(), 0.0);
  for (std::size_t i = 0; i < test_case.tasks.size(); ++i) {
    const auto& task = test_case.tasks[i];
    const auto group = task.group < 0
                           ? CpuScheduler::kNoGroup
                           : group_ids[static_cast<std::size_t>(task.group)];
    cpu.submit(task.work, task.cap, group,
               [&actual, &sim, i] { actual[i] = to_seconds(sim.now()); });
  }
  sim.run();

  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 0.02 + expected[i] * 0.02)
        << "task " << i << " (cores=" << test_case.cores << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuReferenceTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace faasbatch::sim
