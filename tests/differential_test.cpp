// Differential fuzz suite: ≥25 seeded adversarial traces, each replayed
// through all four schedulers with every cross-scheduler invariant
// checked. A failure prints the full report, whose every line carries
// the generating seed, so red runs replay exactly.
#include <gtest/gtest.h>

#include "testing/differential.hpp"

namespace faasbatch::testing {
namespace {

class DifferentialSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialSeedTest, AllSchedulersHoldInvariants) {
  const std::uint64_t seed = GetParam();
  FuzzerOptions fuzz;
  // Keep individual runs quick; adversarial shape matters more than bulk.
  fuzz.min_invocations = 40;
  fuzz.max_invocations = 120;
  fuzz.horizon = 15 * kSecond;

  DifferentialOptions options;
  options.spec.scheduler_options.kraken_default_slo_ms = 2000.0;
  // Widen coverage off the seed, as the stress suite does.
  options.spec.scheduler_options.dispatch_window =
      from_millis(50.0 + static_cast<double>(seed % 5) * 100.0);
  if (seed % 4 == 0) options.spec.scheduler_options.faasbatch_max_group = 8;
  if (seed % 5 == 0) options.spec.keepalive = eval::KeepAliveKind::kHistogram;

  // Chaos by default: run_differential derives a FaultPlan from the seed
  // (a fraction of seeds stay fault-free), so this sweep covers faults,
  // retries, and crash blast radius as well as the fault-free invariants.
  const DifferentialReport report = run_differential(seed, fuzz, options);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.runs.size(), 4u);
  const resilience::FaultPlan plan = fuzz_fault_plan(seed);
  for (const SchedulerRunSummary& run : report.runs) {
    // Everything is terminally accounted; fault-free seeds complete all.
    EXPECT_EQ(run.completed + run.failed + run.shed, run.invocations)
        << run.name << ", seed " << seed;
    if (!plan.any()) {
      EXPECT_EQ(run.completed, run.invocations) << run.name << ", seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FuzzSeeds, DifferentialSeedTest,
                         ::testing::Range<std::uint64_t>(1, 31));

TEST(DifferentialReportTest, ViolationMessageCarriesReplaySeed) {
  InvariantViolation violation;
  violation.seed = 1234;
  violation.scheduler = "FaaSBatch";
  violation.invariant = "exactly-once completion";
  violation.detail = "invocation 7 completed 2 times";
  const std::string line = violation.to_string();
  EXPECT_NE(line.find("seed 1234"), std::string::npos);
  EXPECT_NE(line.find("fuzz_workload(1234)"), std::string::npos);
  EXPECT_NE(line.find("FaaSBatch"), std::string::npos);
}

TEST(DifferentialReportTest, SummaryListsEveryRunAndViolation) {
  DifferentialReport report;
  report.seed = 9;
  SchedulerRunSummary run;
  run.name = "Vanilla";
  run.invocations = 10;
  run.completed = 10;
  report.runs.push_back(run);
  report.violations.push_back(
      InvariantViolation{9, "Vanilla", "memory gauge non-negative", "dipped"});
  const std::string text = report.summary();
  EXPECT_NE(text.find("Vanilla"), std::string::npos);
  EXPECT_NE(text.find("VIOLATION"), std::string::npos);
  EXPECT_NE(text.find("seed 9"), std::string::npos);
  EXPECT_FALSE(report.ok());
}

TEST(DifferentialHarnessTest, HandBuiltTraceIsClean) {
  // A tiny deterministic trace (two functions, one simultaneous pair,
  // one window-boundary arrival) passes all invariants — the harness
  // itself does not false-positive on simple inputs.
  trace::Workload workload;
  workload.kind = trace::FunctionKind::kCpuIntensive;
  trace::FunctionProfile f;
  f.id = 0;
  f.name = "f";
  f.duration_ms = 20.0;
  f.fib_n = 24;
  workload.functions.push_back(f);
  workload.horizon = 5 * kSecond;
  workload.events.push_back(trace::TraceEvent{0, 0, 20.0, 24});
  workload.events.push_back(trace::TraceEvent{0, 0, 20.0, 24});
  workload.events.push_back(trace::TraceEvent{200 * kMillisecond, 0, 20.0, 24});

  const DifferentialReport report = check_workload(/*seed=*/0, workload);
  EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace
}  // namespace faasbatch::testing
