// Failure-injection tests: cold-start failures with automatic retry.
#include <gtest/gtest.h>

#include "eval/experiment.hpp"
#include "runtime/container_pool.hpp"
#include "runtime/machine.hpp"
#include "sim/simulator.hpp"

namespace faasbatch::runtime {
namespace {

trace::FunctionProfile profile() {
  trace::FunctionProfile p;
  p.id = 0;
  p.name = "f";
  p.kind = trace::FunctionKind::kCpuIntensive;
  p.duration_ms = 10.0;
  return p;
}

TEST(FailureInjectionTest, ZeroRateNeverFails) {
  sim::Simulator sim;
  RuntimeConfig config;
  Machine machine(sim, config);
  ContainerPool pool(machine);
  for (int i = 0; i < 20; ++i) {
    pool.provision(profile(), [](Container&, SimDuration) {});
  }
  sim.run_until(kMinute);
  EXPECT_EQ(pool.stats().failed_starts, 0u);
  EXPECT_EQ(pool.stats().total_provisioned, 20u);
}

TEST(FailureInjectionTest, FailuresRetryUntilSuccess) {
  sim::Simulator sim;
  RuntimeConfig config;
  config.cold_start_failure_rate = 0.5;
  Machine machine(sim, config);
  ContainerPool pool(machine);
  int ready = 0;
  for (int i = 0; i < 20; ++i) {
    pool.provision(profile(), [&ready](Container& container, SimDuration latency) {
      ++ready;
      EXPECT_EQ(container.state(), ContainerState::kActive);
      EXPECT_GT(latency, 0);
    });
  }
  sim.run_until(10 * kMinute);
  EXPECT_EQ(ready, 20);
  const PoolStats stats = pool.stats();
  EXPECT_GT(stats.failed_starts, 0u);
  // Every failed attempt re-provisioned.
  EXPECT_EQ(stats.total_provisioned, 20u + stats.failed_starts);
  // Live containers are only the successful ones.
  EXPECT_EQ(pool.live_containers(), 20u);
}

TEST(FailureInjectionTest, FailedAttemptsReleaseMemory) {
  sim::Simulator sim;
  RuntimeConfig config;
  config.cold_start_failure_rate = 0.7;
  Machine machine(sim, config);
  ContainerPool pool(machine);
  int ready = 0;
  for (int i = 0; i < 10; ++i) {
    pool.provision(profile(), [&ready](Container&, SimDuration) { ++ready; });
  }
  sim.run_until(10 * kMinute);
  ASSERT_EQ(ready, 10);
  // Resident memory = platform + exactly the 10 successful containers.
  EXPECT_EQ(machine.memory_in_use(),
            config.platform_base_memory + 10 * config.container_base_memory);
}

TEST(FailureInjectionTest, RetriesInflateColdStartLatency) {
  const auto run_with = [](double rate) {
    sim::Simulator sim;
    RuntimeConfig config;
    config.cold_start_failure_rate = rate;
    Machine machine(sim, config);
    ContainerPool pool(machine);
    SimDuration latency = 0;
    pool.provision(profile(),
                   [&latency](Container&, SimDuration l) { latency = l; });
    sim.run_until(10 * kMinute);
    return latency;
  };
  // Seeded stream: rate 0.95 virtually guarantees at least one retry.
  EXPECT_GT(run_with(0.95), run_with(0.0));
}

TEST(FailureInjectionTest, DeterministicForSeed) {
  const auto run_once = [] {
    sim::Simulator sim;
    RuntimeConfig config;
    config.cold_start_failure_rate = 0.5;
    Machine machine(sim, config);
    ContainerPool pool(machine);
    for (int i = 0; i < 10; ++i) {
      pool.provision(profile(), [](Container&, SimDuration) {});
    }
    sim.run_until(10 * kMinute);
    return pool.stats().failed_starts;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(FailureInjectionTest, EndToEndExperimentStillCompletes) {
  trace::WorkloadSpec workload_spec;
  workload_spec.invocations = 100;
  workload_spec.seed = 5;
  const trace::Workload workload = trace::synthesize_workload(workload_spec);
  for (const auto kind : {schedulers::SchedulerKind::kVanilla,
                          schedulers::SchedulerKind::kFaasBatch}) {
    eval::ExperimentSpec spec;
    spec.scheduler = kind;
    spec.runtime.cold_start_failure_rate = 0.3;
    const auto result = eval::run_experiment(spec, workload);
    EXPECT_EQ(result.completed, 100u) << schedulers::scheduler_kind_name(kind);
    EXPECT_GT(result.cold_starts, result.containers_provisioned -
                                      result.cold_starts);  // sanity: counted
  }
}

}  // namespace
}  // namespace faasbatch::runtime
