// Property and stress tests for the pull-scheduling building blocks:
// the cluster's PendingQueue + steal policy (pure, deterministic) and
// the live pipeline's cross-shard steal path (concurrent, lock-based).
//
// The concurrent tests follow the mpsc_ring_test idiom — producers
// rendezvous at a latch, nothing sleeps, a VirtualClock pins the
// batching window open so the only consumption path under test is the
// steal. CI runs this binary in the tsan job's loop.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <latch>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/pending_queue.hpp"
#include "cluster/steal_policy.hpp"
#include "common/clock.hpp"
#include "live/dispatch/shard.hpp"
#include "live/dispatch/sharded_dispatcher.hpp"

namespace faasbatch::cluster {
namespace {

// --- PendingQueue ordering contract ---------------------------------------

TEST(PendingQueueTest, FifoPerKey) {
  PendingQueue queue;
  queue.push(1, 7, 10);
  queue.push(2, 7, 20);
  queue.push(3, 7, 30);
  std::vector<PendingItem> out;
  EXPECT_EQ(queue.pull_key(7, 2, out), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(out[1].id, 2u);
  EXPECT_EQ(queue.depth(), 1u);
  EXPECT_EQ(queue.pull_key(7, 10, out), 1u);
  EXPECT_EQ(out[2].id, 3u);
  EXPECT_TRUE(queue.empty());
}

TEST(PendingQueueTest, FrontKeyFollowsActivationOrder) {
  PendingQueue queue;
  queue.push(1, 5, 0);   // key 5 activates first
  queue.push(2, 9, 0);   // then key 9
  queue.push(3, 5, 0);   // growing key 5 must not re-activate it
  EXPECT_EQ(queue.front_key(), 5u);
  std::vector<PendingItem> out;
  queue.pull_key(5, 100, out);  // drains key 5 -> deactivates
  EXPECT_EQ(queue.front_key(), 9u);
  queue.push(4, 5, 0);  // key 5 re-activates BEHIND key 9
  EXPECT_EQ(queue.front_key(), 9u);
}

TEST(PendingQueueTest, PartialPullKeepsKeyActive) {
  PendingQueue queue;
  queue.push(1, 5, 0);
  queue.push(2, 5, 0);
  std::vector<PendingItem> out;
  queue.pull_key(5, 1, out);
  EXPECT_EQ(queue.front_key(), 5u);
  EXPECT_EQ(queue.key_depth(5), 1u);
}

TEST(PendingQueueTest, OldestEnqueuedTracksFrontItem) {
  PendingQueue queue;
  EXPECT_EQ(queue.oldest_enqueued(), 0);
  queue.push(1, 5, 40);
  queue.push(2, 9, 10);  // younger key, later activation
  EXPECT_EQ(queue.oldest_enqueued(), 40);
}

TEST(PendingQueueTest, RequeueFrontRestoresHeadOfKeyAndOrder) {
  PendingQueue queue;
  queue.push(1, 5, 0);
  queue.push(2, 5, 0);
  queue.push(3, 9, 0);
  std::vector<PendingItem> pulled;
  queue.pull_key(5, 2, pulled);  // key 5 drained, key 9 now front
  queue.push(4, 5, 0);           // new arrival re-activates key 5 behind 9
  EXPECT_EQ(queue.front_key(), 9u);

  // The worker died: its pulled items return to the head of key 5, and
  // key 5 returns to the head of the activation order.
  queue.requeue_front(pulled);
  EXPECT_EQ(queue.front_key(), 5u);
  ASSERT_EQ(queue.key_depth(5), 3u);
  std::vector<PendingItem> out;
  queue.pull_key(5, 3, out);
  EXPECT_EQ(out[0].id, 1u);  // reclaimed items ahead of the newer arrival
  EXPECT_EQ(out[1].id, 2u);
  EXPECT_EQ(out[2].id, 4u);
  EXPECT_EQ(queue.front_key(), 9u);
}

TEST(PendingQueueTest, RequeueMultipleKeysKeepsFirstAppearanceOrder) {
  PendingQueue queue;
  queue.push(9, 3, 0);  // resident key
  const std::vector<PendingItem> reclaimed = {
      {1, 7, 0}, {2, 4, 0}, {3, 7, 0}};
  queue.requeue_front(reclaimed);
  EXPECT_EQ(queue.depth(), 4u);
  EXPECT_EQ(queue.front_key(), 7u);  // first-appearance order: 7 then 4
  std::vector<PendingItem> out;
  queue.pull_key(7, 10, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(out[1].id, 3u);
  EXPECT_EQ(queue.front_key(), 4u);
  queue.pull_key(4, 10, out);
  EXPECT_EQ(queue.front_key(), 3u);
}

// --- PendingQueue op-fuzz vs. a reference model ---------------------------
//
// Double-entry bookkeeping: a seeded op mix (push / pull / crash-requeue)
// runs against the queue and an independently maintained model; every op
// cross-checks order and depths, and the final drain proves conservation
// (every pushed id leaves exactly once — nothing lost, nothing doubled).

struct QueueModel {
  std::map<FunctionId, std::deque<InvocationId>> keys;
  std::deque<FunctionId> order;

  void push(InvocationId id, FunctionId key) {
    if (keys[key].empty()) order.push_back(key);
    keys[key].push_back(id);
  }
  std::vector<InvocationId> pull(FunctionId key, std::size_t max) {
    std::vector<InvocationId> out;
    auto& fifo = keys[key];
    while (out.size() < max && !fifo.empty()) {
      out.push_back(fifo.front());
      fifo.pop_front();
    }
    if (fifo.empty()) {
      keys.erase(key);
      order.erase(std::find(order.begin(), order.end(), key));
    }
    return out;
  }
  void requeue(const std::vector<PendingItem>& items) {
    std::vector<FunctionId> reclaimed;
    for (const PendingItem& item : items) {
      if (std::find(reclaimed.begin(), reclaimed.end(), item.function) ==
          reclaimed.end()) {
        reclaimed.push_back(item.function);
      }
    }
    for (auto it = items.rbegin(); it != items.rend(); ++it) {
      keys[it->function].push_front(it->id);
    }
    for (const FunctionId key : reclaimed) {
      const auto pos = std::find(order.begin(), order.end(), key);
      if (pos != order.end()) order.erase(pos);
    }
    for (auto it = reclaimed.rbegin(); it != reclaimed.rend(); ++it) {
      order.push_front(*it);
    }
  }
};

/// Deterministic LCG (same constants as MSVC's) — no std::random in tests.
struct Lcg {
  std::uint64_t state;
  std::uint64_t next() { return state = state * 6364136223846793005ull + 1442695040888963407ull; }
  std::size_t below(std::size_t n) { return static_cast<std::size_t>((next() >> 33) % n); }
};

void run_fuzz(std::uint64_t seed, std::size_t ops,
              std::vector<InvocationId>& committed) {
  PendingQueue queue;
  QueueModel model;
  Lcg rng{seed};
  InvocationId next_id = 1;
  std::vector<std::vector<PendingItem>> in_flight;  // pulled, not committed
  std::size_t pushed = 0;

  for (std::size_t op = 0; op < ops; ++op) {
    const std::size_t roll = rng.below(10);
    if (roll < 5) {  // push
      const FunctionId key = static_cast<FunctionId>(rng.below(8));
      queue.push(next_id, key, static_cast<SimTime>(op));
      model.push(next_id, key);
      ++next_id;
      ++pushed;
    } else if (roll < 8 && !queue.empty()) {  // pull the front key
      const FunctionId key = queue.front_key();
      ASSERT_FALSE(model.order.empty());
      EXPECT_EQ(key, model.order.front());
      const std::size_t max = 1 + rng.below(5);
      std::vector<PendingItem> batch;
      queue.pull_key(key, max, batch);
      const std::vector<InvocationId> expect = model.pull(key, max);
      ASSERT_EQ(batch.size(), expect.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(batch[i].id, expect[i]);
      }
      in_flight.push_back(std::move(batch));
    } else if (roll == 8 && !in_flight.empty()) {  // crash: requeue a batch
      const std::size_t pick = rng.below(in_flight.size());
      queue.requeue_front(in_flight[pick]);
      model.requeue(in_flight[pick]);
      in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (!in_flight.empty()) {  // commit: the batch executed
      const std::size_t pick = rng.below(in_flight.size());
      for (const PendingItem& item : in_flight[pick]) {
        committed.push_back(item.id);
      }
      in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    EXPECT_EQ(queue.empty(), model.order.empty());
  }

  // Drain everything still queued or in flight.
  while (!queue.empty()) {
    const FunctionId key = queue.front_key();
    EXPECT_EQ(key, model.order.front());
    std::vector<PendingItem> batch;
    queue.pull_key(key, 1000, batch);
    const std::vector<InvocationId> expect = model.pull(key, 1000);
    ASSERT_EQ(batch.size(), expect.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].id, expect[i]);
      committed.push_back(batch[i].id);
    }
  }
  for (const auto& batch : in_flight) {
    for (const PendingItem& item : batch) committed.push_back(item.id);
  }

  // Conservation: every pushed id accounted exactly once.
  EXPECT_EQ(committed.size(), pushed);
  std::vector<InvocationId> sorted = committed;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
      << "an invocation left the queue twice";
}

TEST(PendingQueueFuzzTest, NoLossNoDuplicationAcrossSeeds) {
  for (const std::uint64_t seed : {11ull, 12ull, 13ull, 14ull, 15ull}) {
    std::vector<InvocationId> committed;
    run_fuzz(seed, 2000, committed);
  }
}

TEST(PendingQueueFuzzTest, ReplayIsDeterministic) {
  std::vector<InvocationId> first, second;
  run_fuzz(99, 3000, first);
  run_fuzz(99, 3000, second);
  EXPECT_EQ(first, second);
}

// --- Steal policy decisions -----------------------------------------------

TEST(StealPolicyTest, PickVictimTakesDeepestAboveThreshold) {
  StealPolicyOptions options;
  options.min_victim_backlog = 4;
  EXPECT_EQ(pick_victim({0, 9, 3, 12}, /*thief=*/0, options), 3u);
  EXPECT_EQ(pick_victim({0, 9, 3, 2}, 0, options), 1u);
  // Below threshold everywhere: no victim.
  EXPECT_EQ(pick_victim({3, 3, 3, 3}, 0, options), std::nullopt);
}

TEST(StealPolicyTest, PickVictimNeverPicksTheThief) {
  StealPolicyOptions options;
  options.min_victim_backlog = 1;
  EXPECT_EQ(pick_victim({20, 5}, /*thief=*/0, options), 1u);
  EXPECT_EQ(pick_victim({20}, 0, options), std::nullopt);
}

TEST(StealPolicyTest, PickVictimTiesBreakToLowerIndex) {
  StealPolicyOptions options;
  options.min_victim_backlog = 1;
  EXPECT_EQ(pick_victim({3, 8, 8, 8}, /*thief=*/1, options), 2u);
  EXPECT_EQ(pick_victim({8, 3, 8, 8}, 1, options), 0u);
}

TEST(StealPolicyTest, StealBudgetIsFractionRoundedUpAndCapped) {
  StealPolicyOptions options;
  options.steal_fraction = 0.5;
  options.max_steal = 8;
  EXPECT_EQ(steal_budget(1, options), 1u);   // ceil(0.5)
  EXPECT_EQ(steal_budget(7, options), 4u);   // ceil(3.5)
  EXPECT_EQ(steal_budget(100, options), 8u); // max_steal cap
  options.steal_fraction = 2.0;              // clamped to the backlog
  EXPECT_EQ(steal_budget(5, options), 5u);
}

TEST(StealPolicyTest, SelectPrefersWarmThenAffineThenRestNewestFirst) {
  // Backlog (front = oldest): f0 f1 f2 f0 f1 f2. Thief warm for f2,
  // affine for f1.
  std::deque<PendingItem> backlog;
  for (InvocationId id = 0; id < 6; ++id) {
    backlog.push_back({id, static_cast<FunctionId>(id % 3), 0});
  }
  const auto warm = [](FunctionId f) { return f == 2; };
  const auto affine = [](FunctionId f) { return f == 1; };
  // Budget 3: both f2 items (newest first: index 5 then 2), then the
  // newest f1 item (index 4). Output ascending for caller-side erase.
  const auto indices = select_steal_indices(backlog, 3, warm, affine);
  EXPECT_EQ(indices, (std::vector<std::size_t>{2, 4, 5}));
  // Budget 6 takes everything, still ascending.
  const auto all = select_steal_indices(backlog, 6, warm, affine);
  EXPECT_EQ(all, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(StealPolicyTest, SelectFallsBackToNewestOfTheRest) {
  std::deque<PendingItem> backlog;
  for (InvocationId id = 0; id < 4; ++id) backlog.push_back({id, 9, 0});
  const auto none = [](FunctionId) { return false; };
  // No warm or affine items: take the newest, leave the victim its
  // oldest (FIFO progress survives the steal).
  const auto indices = select_steal_indices(backlog, 2, none, none);
  EXPECT_EQ(indices, (std::vector<std::size_t>{2, 3}));
}

}  // namespace
}  // namespace faasbatch::cluster

// --- Live pipeline: cross-shard steal -------------------------------------

namespace faasbatch::live::dispatch {
namespace {

/// A VirtualClock pinned at zero keeps a nonzero batching window open
/// forever, so nothing drains through the flush loop — every pre-close
/// consumption below is a steal.
TEST(ShardStealTest, StealsAreCountedAndNothingIsLostConcurrently) {
  VirtualClock clock;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;

  std::mutex flushed_mutex;
  std::vector<int> flushed;
  Shard<int>::Options options;
  options.index = 0;
  options.ring_capacity = 64;  // small ring: exercise the overflow path
  options.clock = &clock;
  options.window = std::chrono::milliseconds(10'000);
  Shard<int> shard(options, [&](std::size_t, std::vector<int> items,
                                ClockTime, ClockTime) {
    std::lock_guard<std::mutex> lock(flushed_mutex);
    flushed.insert(flushed.end(), items.begin(), items.end());
  });

  std::latch gate(kProducers + 1);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      gate.arrive_and_wait();
      for (int i = 0; i < kPerProducer; ++i) {
        while (shard.try_enqueue(p * kPerProducer + i) != Admit::kOk) {
          std::this_thread::yield();
        }
      }
    });
  }

  // The thief runs concurrently with the producers, mid-stream.
  std::vector<int> stolen;
  gate.arrive_and_wait();
  for (int round = 0; round < 200; ++round) {
    shard.try_steal(7, stolen);
    std::this_thread::yield();
  }
  for (std::thread& t : producers) t.join();
  shard.close();
  shard.join();  // final sweep flushes whatever the thief left behind

  const ShardSnapshot snap = shard.snapshot();
  EXPECT_EQ(snap.stolen, stolen.size());
  std::vector<int> all = stolen;
  {
    std::lock_guard<std::mutex> lock(flushed_mutex);
    all.insert(all.end(), flushed.begin(), flushed.end());
  }
  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(all.begin(), all.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_EQ(all[static_cast<std::size_t>(i)], i)
        << "item lost or duplicated across steal + flush";
  }
}

TEST(ShardStealTest, StealRespectsMaxAndEmptyShardYieldsNothing) {
  VirtualClock clock;
  Shard<int>::Options options;
  options.clock = &clock;
  options.window = std::chrono::milliseconds(10'000);
  Shard<int> shard(options, [](std::size_t, std::vector<int>, ClockTime,
                               ClockTime) {});
  std::vector<int> out;
  EXPECT_EQ(shard.try_steal(4, out), 0u);
  for (int i = 0; i < 10; ++i) shard.try_enqueue(i);
  EXPECT_EQ(shard.try_steal(4, out), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));  // ring order preserved
  EXPECT_EQ(shard.snapshot().depth, 6u);
  shard.close();
  shard.join();
}

TEST(ShardedDispatcherStealTest, IdleWorkersDrainBackloggedShardsEarly) {
  VirtualClock clock;
  constexpr int kItems = 256;
  // The steal hint is advisory: a nudge that fires before any worker has
  // parked is dropped by design (the next enqueue re-arms it, and the
  // window flush is the correctness backstop). The test therefore keeps
  // enqueueing fresh items until a steal lands, with headroom to spare.
  constexpr int kMaxItems = kItems + 20000;
  std::vector<std::atomic<int>> executed(kMaxItems);
  std::atomic<int> done{0};

  using Dispatcher = ShardedDispatcher<int, std::vector<int>>;
  Dispatcher::Options options;
  options.shards = 4;
  options.workers = 2;
  options.clock = &clock;
  options.window = std::chrono::milliseconds(10'000);  // never elapses
  options.steal_min_depth = 4;
  options.steal_max_batch = 64;

  std::unique_ptr<Dispatcher> dispatcher;
  dispatcher = std::make_unique<Dispatcher>(
      options,
      [&](std::size_t, std::vector<int> items, ClockTime, ClockTime) {
        dispatcher->submit(std::move(items));
      },
      [&](std::vector<int>&& batch) {
        for (const int v : batch) {
          executed[static_cast<std::size_t>(v)].fetch_add(1,
              std::memory_order_relaxed);
          done.fetch_add(1, std::memory_order_relaxed);
        }
      });

  int enqueued = 0;
  for (; enqueued < kItems; ++enqueued) {
    ASSERT_EQ(dispatcher->enqueue(static_cast<std::size_t>(enqueued) % 4,
                                  int(enqueued)),
              Admit::kOk);
  }
  // With the window pinned open, steals are the only path to execution.
  // Every extra enqueue re-fires the hint against a now-parked worker.
  while (done.load(std::memory_order_relaxed) == 0 && enqueued < kMaxItems) {
    ASSERT_EQ(dispatcher->enqueue(static_cast<std::size_t>(enqueued) % 4,
                                  int(enqueued)),
              Admit::kOk);
    ++enqueued;
    std::this_thread::yield();
  }
  std::uint64_t stolen = 0;
  for (const ShardSnapshot& snap : dispatcher->snapshots()) {
    stolen += snap.stolen;
  }
  EXPECT_GT(stolen, 0u) << "no steal fired while the window was pinned open";

  dispatcher->close();
  dispatcher->join();  // final sweeps flush what the thieves left
  dispatcher.reset();
  for (int i = 0; i < enqueued; ++i) {
    EXPECT_EQ(executed[static_cast<std::size_t>(i)].load(), 1)
        << "item " << i << " lost or double-executed";
  }
}

}  // namespace
}  // namespace faasbatch::live::dispatch
