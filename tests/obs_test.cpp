// Tests for the observability layer: metrics registry semantics,
// trace recorder ordering and JSON well-formedness, virtual-clock
// timestamps in live spans, and the guard that tracing/metrics cannot
// perturb simulation results (the deterministic-differential contract).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "eval/experiment.hpp"
#include "live/functions.hpp"
#include "live/live_platform.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "trace/workload.hpp"

namespace faasbatch {
namespace {

/// Restores the process-global recorders to their default (disabled,
/// empty) state on scope exit so tests cannot leak into each other.
struct GlobalObsGuard {
  ~GlobalObsGuard() {
    obs::tracer().set_enabled(false);
    obs::tracer().drain();
    obs::metrics().set_enabled(false);
    obs::metrics().reset();
  }
};

trace::Workload small_workload(std::uint64_t seed = 7) {
  trace::WorkloadSpec spec;
  spec.kind = trace::FunctionKind::kCpuIntensive;
  spec.invocations = 40;
  spec.num_functions = 4;
  spec.seed = seed;
  return trace::synthesize_workload(spec);
}

// --- MetricsRegistry ---

TEST(MetricsRegistryTest, DisabledInstrumentsRecordNothing) {
  obs::MetricsRegistry registry;  // disabled by default
  obs::Counter& counter = registry.counter("c_total");
  obs::Gauge& gauge = registry.gauge("g");
  obs::Histogram& histogram = registry.histogram("h", {1.0, 2.0});
  counter.inc();
  gauge.set(5.0);
  histogram.observe(1.5);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.count(), 0u);
}

TEST(MetricsRegistryTest, CounterConcurrentIncrements) {
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  obs::Counter& counter = registry.counter("c_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, HistogramBucketBoundaries) {
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  obs::Histogram& h = registry.histogram("h", {1.0, 2.0, 4.0});
  // Prometheus le semantics: an observation equal to a bound lands in
  // that bound's bucket, strictly above it falls through to the next.
  h.observe(0.5);  // bucket le=1
  h.observe(1.0);  // bucket le=1 (boundary inclusive)
  h.observe(1.5);  // bucket le=2
  h.observe(2.0);  // bucket le=2
  h.observe(4.0);  // bucket le=4
  h.observe(9.0);  // overflow (+Inf)
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 9.0);
}

TEST(MetricsRegistryTest, HistogramRejectsUnsortedBounds) {
  obs::MetricsRegistry registry;
  EXPECT_THROW(registry.histogram("bad", {2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(registry.histogram("dup", {1.0, 1.0}), std::invalid_argument);
}

TEST(MetricsRegistryTest, PrometheusTextExposition) {
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  registry.counter("fb_cold_starts_total").inc(3);
  registry.gauge("fb_live_containers").set(2.0);
  obs::Histogram& h = registry.histogram("fb_batch_size", {1.0, 2.0});
  h.observe(1.0);
  h.observe(2.0);
  h.observe(5.0);
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# TYPE fb_cold_starts_total counter"), std::string::npos);
  EXPECT_NE(text.find("fb_cold_starts_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fb_live_containers gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fb_batch_size histogram"), std::string::npos);
  // Cumulative buckets: le="2" includes le="1"; +Inf includes everything.
  EXPECT_NE(text.find("fb_batch_size_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("fb_batch_size_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("fb_batch_size_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("fb_batch_size_count 3"), std::string::npos);
  EXPECT_NE(text.find("fb_batch_size_sum 8"), std::string::npos);
}

TEST(MetricsRegistryTest, LabelledNamesSpliceLeIntoLabelSet) {
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  obs::Histogram& h =
      registry.histogram("fb_exec_ms{scheduler=\"faasbatch\"}", {10.0});
  h.observe(5.0);
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("fb_exec_ms_bucket{scheduler=\"faasbatch\",le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fb_exec_ms histogram"), std::string::npos);
}

TEST(MetricsRegistryTest, SnapshotIsWellFormedJson) {
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  registry.counter("c_total").inc(2);
  registry.histogram("h", {1.0}).observe(0.5);
  const Json round_trip = Json::parse(registry.snapshot().dump());
  EXPECT_EQ(round_trip.at("counters").at("c_total").as_int(), 2);
  EXPECT_EQ(round_trip.at("histograms").at("h").at("count").as_int(), 1);
}

// --- TraceRecorder ---

TEST(TraceRecorderTest, DisabledEmitsNothing) {
  obs::TraceRecorder recorder;
  recorder.complete("cat", "span", 10.0, 5.0, 1);
  recorder.instant("cat", "mark", 11.0, 1);
  recorder.counter("queue_depth", 12.0, 3.0);
  EXPECT_EQ(recorder.begin_process("p"), 0u);
  EXPECT_EQ(recorder.pending(), 0u);
  EXPECT_TRUE(recorder.drain().empty());
}

TEST(TraceRecorderTest, DrainOrdersByTimestampWithMetadataFirst) {
  obs::TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.complete("cat", "late", 300.0, 10.0, 1);
  recorder.instant("cat", "early", 100.0, 1);
  recorder.begin_process("proc");  // metadata, emitted last
  recorder.instant("cat", "middle", 200.0, 1);
  const std::vector<obs::TraceEvent> events = recorder.drain();
  ASSERT_GE(events.size(), 5u);  // process_name + platform thread + 3
  EXPECT_EQ(events.front().phase, 'M');
  std::vector<std::string> timed;
  for (const obs::TraceEvent& event : events) {
    if (event.phase != 'M') timed.push_back(event.name);
  }
  ASSERT_EQ(timed.size(), 3u);
  EXPECT_EQ(timed[0], "early");
  EXPECT_EQ(timed[1], "middle");
  EXPECT_EQ(timed[2], "late");
  EXPECT_EQ(recorder.pending(), 0u);  // drain clears
}

TEST(TraceRecorderTest, ChromeJsonRoundTrip) {
  obs::TraceRecorder recorder;
  recorder.set_enabled(true);
  const std::uint32_t pid = recorder.begin_process("sim:faasbatch");
  ASSERT_NE(pid, 0u);
  recorder.name_thread(7, "inv 7");
  recorder.complete("invocation", "exec", 100.0, 50.0, 7,
                    {{"function", Json(std::int64_t{3})}});
  recorder.instant("mux", "mux_hit", 120.0, 7);
  recorder.counter("containers", 130.0, 2.0);
  std::ostringstream os;
  recorder.write_chrome_trace(os);
  const Json doc = Json::parse(os.str());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const JsonArray& events = doc.at("traceEvents").as_array();
  bool saw_exec = false;
  for (const Json& event : events) {
    if (event.at("name").as_string() != "exec") continue;
    saw_exec = true;
    EXPECT_EQ(event.at("ph").as_string(), "X");
    EXPECT_DOUBLE_EQ(event.at("ts").as_double(), 100.0);
    EXPECT_DOUBLE_EQ(event.at("dur").as_double(), 50.0);
    EXPECT_EQ(event.at("pid").as_int(), static_cast<std::int64_t>(pid));
    EXPECT_EQ(event.at("tid").as_int(), 7);
    EXPECT_EQ(event.at("args").at("function").as_int(), 3);
  }
  EXPECT_TRUE(saw_exec);
}

TEST(TraceRecorderTest, SpanPairsSurviveDrainAndSortStably) {
  obs::TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.begin_span("live", "request", 100.0, 42,
                      {{"function", Json(std::string("resize"))}});
  recorder.end_span("live", "request", 150.0, 42);
  // A zero-length span at the same timestamp as the enclosing end: the
  // seq tie-break must preserve emission order, keeping pairs nested.
  recorder.begin_span("live", "inner", 150.0, 42);
  recorder.end_span("live", "inner", 150.0, 42);
  const std::vector<obs::TraceEvent> events = recorder.drain();
  std::vector<char> phases;
  for (const obs::TraceEvent& event : events) {
    if (event.phase != 'M') phases.push_back(event.phase);
  }
  ASSERT_EQ(phases.size(), 4u);
  EXPECT_EQ(phases[0], 'B');
  EXPECT_EQ(phases[1], 'E');  // request closes before inner opens at ts=150
  EXPECT_EQ(phases[2], 'B');
  EXPECT_EQ(phases[3], 'E');
  EXPECT_EQ(events.front().args.empty(), false);  // 'B' carries args
}

TEST(TraceRecorderTest, SpanJsonCarriesBeginEndPhases) {
  obs::TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.begin_span("live", "request", 10.0, 3);
  recorder.end_span("live", "request", 20.0, 3);
  std::ostringstream os;
  recorder.write_chrome_trace(os);
  const Json doc = Json::parse(os.str());
  std::vector<std::string> phases;
  for (const Json& event : doc.at("traceEvents").as_array()) {
    if (event.at("name").as_string() == "request") {
      phases.push_back(event.at("ph").as_string());
      EXPECT_FALSE(event.contains("dur"));  // duration belongs to 'X' only
    }
  }
  EXPECT_EQ(phases, (std::vector<std::string>{"B", "E"}));
}

TEST(TraceRecorderTest, ConcurrentEmittersLoseNoEvents) {
  obs::TraceRecorder recorder;
  recorder.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.instant("cat", "tick", static_cast<double>(i),
                         static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::size_t ticks = 0;
  for (const obs::TraceEvent& event : recorder.drain()) {
    if (event.name == "tick") ++ticks;
  }
  EXPECT_EQ(ticks, static_cast<std::size_t>(kThreads) * kPerThread);
}

// --- Simulation integration ---

eval::ExperimentSpec sim_spec(schedulers::SchedulerKind kind) {
  eval::ExperimentSpec spec;
  spec.scheduler = kind;
  spec.scheduler_options.dispatch_window = from_millis(50.0);
  return spec;
}

TEST(ObsSimulationTest, EverySchedulerEmitsCompleteSpanChains) {
  GlobalObsGuard guard;
  const trace::Workload workload = small_workload();
  for (const auto kind :
       {schedulers::SchedulerKind::kVanilla, schedulers::SchedulerKind::kKraken,
        schedulers::SchedulerKind::kSfs, schedulers::SchedulerKind::kFaasBatch}) {
    obs::tracer().drain();
    obs::tracer().set_enabled(true);
    (void)eval::run_experiment(sim_spec(kind), workload);
    obs::tracer().set_enabled(false);
    std::size_t invocation_spans = 0;
    std::size_t schedule_spans = 0;
    std::size_t exec_spans = 0;
    double max_ts = 0.0;
    for (const obs::TraceEvent& event : obs::tracer().drain()) {
      if (event.name == "invocation") ++invocation_spans;
      if (event.name == "schedule") ++schedule_spans;
      if (event.name == "exec") {
        ++exec_spans;
        max_ts = std::max(max_ts, event.ts_us + event.dur_us);
      }
    }
    // One full arrival -> dispatch -> exec chain per invocation; span
    // timestamps are virtual time (µs), bounded by the sim horizon.
    EXPECT_EQ(invocation_spans, workload.events.size()) << "scheduler " << (int)kind;
    EXPECT_EQ(schedule_spans, workload.events.size());
    EXPECT_EQ(exec_spans, workload.events.size());
    EXPECT_GT(max_ts, 0.0);
  }
}

TEST(ObsSimulationTest, ObservabilityDoesNotPerturbResults) {
  GlobalObsGuard guard;
  const trace::Workload workload = small_workload(11);
  const eval::ExperimentSpec spec = sim_spec(schedulers::SchedulerKind::kFaasBatch);

  obs::tracer().set_enabled(false);
  obs::metrics().set_enabled(false);
  const eval::ExperimentResult off = eval::run_experiment(spec, workload);

  obs::tracer().set_enabled(true);
  obs::metrics().set_enabled(true);
  const eval::ExperimentResult on = eval::run_experiment(spec, workload);

  // Tracing and metrics must be pure observers: virtual time, placement,
  // and resource outcomes are bit-identical with them on or off.
  EXPECT_EQ(off.makespan, on.makespan);
  EXPECT_EQ(off.containers_provisioned, on.containers_provisioned);
  EXPECT_EQ(off.cold_starts, on.cold_starts);
  EXPECT_EQ(off.warm_hits, on.warm_hits);
  ASSERT_EQ(off.records.size(), on.records.size());
  for (std::size_t i = 0; i < off.records.size(); ++i) {
    EXPECT_EQ(off.records[i].dispatched, on.records[i].dispatched);
    EXPECT_EQ(off.records[i].exec_start, on.records[i].exec_start);
    EXPECT_EQ(off.records[i].exec_end, on.records[i].exec_end);
  }
}

TEST(ObsSimulationTest, MetricsCoverColdStartsAndBatchSizes) {
  GlobalObsGuard guard;
  obs::metrics().reset();
  obs::metrics().set_enabled(true);
  const trace::Workload workload = small_workload();
  const eval::ExperimentResult result =
      eval::run_experiment(sim_spec(schedulers::SchedulerKind::kFaasBatch), workload);
  obs::metrics().set_enabled(false);
  EXPECT_EQ(obs::metrics().counter("fb_cold_starts_total").value(),
            result.cold_starts);
  EXPECT_EQ(obs::metrics().counter("fb_invocations_total").value(),
            workload.events.size());
  EXPECT_GT(obs::metrics().counter("fb_faasbatch_groups_total").value(), 0u);
  const std::string text = obs::metrics().prometheus_text();
  EXPECT_NE(text.find("fb_batch_size_bucket"), std::string::npos);
  EXPECT_NE(text.find("fb_response_latency_ms_bucket"), std::string::npos);
}

// --- Live platform: spans carry the injected clock's time ---

TEST(ObsLiveTest, SpansUseVirtualClockTimestamps) {
  GlobalObsGuard guard;
  obs::tracer().drain();
  obs::tracer().set_enabled(true);

  VirtualClock clock;
  live::LivePlatformOptions options;
  options.policy = live::LivePolicy::kVanilla;  // immediate dispatch
  options.clock = &clock;
  options.container.threads = 1;
  options.container.cold_start_work_ms = 0.5;

  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::atomic<bool> started{false};
  {
    live::LivePlatform platform(options);
    platform.register_function("gated", [&started, open](live::FunctionContext&) {
      started = true;
      open.wait();
    });
    auto future = platform.invoke("gated");
    while (!started.load()) {
      // fb-lint-allow(raw-clock): real pacing on a cross-thread flag.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Execution began at virtual t=0; advance virtual time while the
    // handler is pinned so the exec span's duration is exactly 5 ms.
    clock.advance(std::chrono::milliseconds(5));
    gate.set_value();
    const live::InvocationReport report = future.get();
    EXPECT_DOUBLE_EQ(report.exec_ms, 5.0);
  }
  obs::tracer().set_enabled(false);

  bool saw_exec = false;
  bool saw_arrival = false;
  for (const obs::TraceEvent& event : obs::tracer().drain()) {
    if (event.name == "arrival") {
      saw_arrival = true;
      EXPECT_DOUBLE_EQ(event.ts_us, 0.0);  // submitted at virtual zero
    }
    if (event.name == "exec") {
      saw_exec = true;
      EXPECT_DOUBLE_EQ(event.ts_us, 0.0);
      EXPECT_DOUBLE_EQ(event.dur_us, 5000.0);  // virtual, not wall time
    }
  }
  EXPECT_TRUE(saw_arrival);
  EXPECT_TRUE(saw_exec);
}

}  // namespace
}  // namespace faasbatch
