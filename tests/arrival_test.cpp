// Tests for arrival-pattern generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "trace/arrival.hpp"

namespace faasbatch::trace {
namespace {

TEST(PoissonArrivalsTest, CountHorizonAndOrder) {
  Rng rng(1);
  const auto arrivals = poisson_arrivals(500, kMinute, rng);
  EXPECT_EQ(arrivals.size(), 500u);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  for (SimTime t : arrivals) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, kMinute);
  }
}

TEST(BurstyArrivalsTest, ExactCountSortedWithinHorizon) {
  Rng rng(2);
  const auto arrivals = bursty_arrivals(800, kMinute, BurstyPattern{}, rng);
  EXPECT_EQ(arrivals.size(), 800u);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  for (SimTime t : arrivals) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, kMinute);
  }
}

TEST(BurstyArrivalsTest, BurstierThanPoisson) {
  Rng rng1(3), rng2(3);
  const auto bursty = bursty_arrivals(800, kMinute, BurstyPattern{}, rng1);
  const auto poisson = poisson_arrivals(800, kMinute, rng2);
  const auto bursty_buckets = arrivals_per_bucket(bursty, kMinute, kSecond);
  const auto poisson_buckets = arrivals_per_bucket(poisson, kMinute, kSecond);
  const auto peak = [](const std::vector<std::size_t>& b) {
    return *std::max_element(b.begin(), b.end());
  };
  // The bursty series must have a markedly higher peak second.
  EXPECT_GT(peak(bursty_buckets), 2 * peak(poisson_buckets));
}

TEST(BurstyArrivalsTest, DeterministicForSeed) {
  Rng a(7), b(7);
  EXPECT_EQ(bursty_arrivals(100, kMinute, BurstyPattern{}, a),
            bursty_arrivals(100, kMinute, BurstyPattern{}, b));
}

TEST(BurstyArrivalsTest, ZeroBurstFractionIsBackgroundOnly) {
  Rng rng(5);
  BurstyPattern pattern;
  pattern.burst_fraction = 0.0;
  const auto arrivals = bursty_arrivals(200, kMinute, pattern, rng);
  EXPECT_EQ(arrivals.size(), 200u);
}

TEST(BurstyArrivalsTest, Validation) {
  Rng rng(6);
  EXPECT_THROW(bursty_arrivals(10, 0, BurstyPattern{}, rng), std::invalid_argument);
  BurstyPattern bad;
  bad.burst_fraction = 1.5;
  EXPECT_THROW(bursty_arrivals(10, kMinute, bad, rng), std::invalid_argument);
  EXPECT_THROW(poisson_arrivals(10, 0, rng), std::invalid_argument);
}

TEST(ArrivalsPerBucketTest, CountsAndBoundaries) {
  const std::vector<SimTime> arrivals{0, kSecond - 1, kSecond, 5 * kSecond,
                                      kMinute + kSecond /* outside */};
  const auto buckets = arrivals_per_bucket(arrivals, kMinute, kSecond);
  ASSERT_EQ(buckets.size(), 60u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[5], 1u);
  EXPECT_EQ(std::accumulate(buckets.begin(), buckets.end(), 0u), 4u);
}

TEST(ArrivalsPerBucketTest, Validation) {
  EXPECT_THROW(arrivals_per_bucket({}, kMinute, 0), std::invalid_argument);
}

// Property sweep: counts are exact across sizes and horizons.
class BurstyCountTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, SimDuration>> {};

TEST_P(BurstyCountTest, ExactCount) {
  const auto [count, horizon] = GetParam();
  Rng rng(count * 31 + 1);
  const auto arrivals = bursty_arrivals(count, horizon, BurstyPattern{}, rng);
  EXPECT_EQ(arrivals.size(), count);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  if (!arrivals.empty()) {
    EXPECT_LT(arrivals.back(), horizon);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BurstyCountTest,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 10, 400, 800),
                       ::testing::Values<SimDuration>(kSecond, kMinute, kHour)));

}  // namespace
}  // namespace faasbatch::trace
