// Tests for latency breakdowns and the text reporting helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "metrics/breakdown.hpp"
#include "metrics/report.hpp"

namespace faasbatch::metrics {
namespace {

TEST(BreakdownTest, TotalSumsComponents) {
  LatencyBreakdown b;
  b.scheduling = 10 * kMillisecond;
  b.cold_start = 20 * kMillisecond;
  b.queuing = 30 * kMillisecond;
  b.execution = 40 * kMillisecond;
  EXPECT_EQ(b.total(), 100 * kMillisecond);
}

TEST(BreakdownAggregateTest, CollectsPerComponentInMillis) {
  BreakdownAggregate agg;
  LatencyBreakdown b;
  b.scheduling = 5 * kMillisecond;
  b.execution = 15 * kMillisecond;
  b.queuing = 10 * kMillisecond;
  agg.add(b);
  EXPECT_EQ(agg.count(), 1u);
  EXPECT_DOUBLE_EQ(agg.scheduling().percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(agg.execution().percentile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(agg.exec_plus_queue().percentile(0.5), 25.0);
  EXPECT_DOUBLE_EQ(agg.total().percentile(0.5), 30.0);
}

TEST(TableTest, AlignsColumnsAndPrintsRule) {
  Table table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // 4 lines: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TableTest, RowWidthValidation) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, CsvOutput) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, CsvQuotesCellsWithCommasQuotesAndNewlines) {
  Table table({"name", "value"});
  table.add_row({"a,b", "plain"});
  table.add_row({"say \"hi\"", "line1\nline2"});
  std::ostringstream os;
  table.print_csv(os);
  // RFC 4180: commas/newlines force quoting, embedded quotes double.
  EXPECT_EQ(os.str(),
            "name,value\n"
            "\"a,b\",plain\n"
            "\"say \"\"hi\"\"\",\"line1\nline2\"\n");
}

TEST(TableTest, CsvQuotedHeader) {
  Table table({"component,unit", "p50"});
  table.add_row({"x", "1"});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "\"component,unit\",p50\nx,1\n");
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 0), "1");
  EXPECT_EQ(Table::num(-2.5, 1), "-2.5");
}

TEST(ReportTest, PrintCdfEmitsQuantileRows) {
  Samples samples;
  for (int i = 1; i <= 10; ++i) samples.add(static_cast<double>(i));
  std::ostringstream os;
  print_cdf(os, "test", samples, 5);
  const std::string out = os.str();
  EXPECT_NE(out.find("# CDF: test (n=10)"), std::string::npos);
  // 5 quantile rows + 2 header lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 7);
}

TEST(ReportTest, CdfComparisonHandlesEmptySeries) {
  Samples a;
  a.add(1.0);
  Samples empty;
  std::ostringstream os;
  print_cdf_comparison(os, {"a", "none"}, {&a, &empty}, 4);
  EXPECT_NE(os.str().find("-"), std::string::npos);
}

TEST(ReportTest, CdfComparisonValidatesArity) {
  Samples a;
  std::ostringstream os;
  EXPECT_THROW(print_cdf_comparison(os, {"a", "b"}, {&a}, 4), std::invalid_argument);
}

}  // namespace
}  // namespace faasbatch::metrics
