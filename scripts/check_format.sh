#!/usr/bin/env bash
# Checks that tracked C++ sources satisfy .clang-format.
#
#   scripts/check_format.sh          report violations (exit 1 if any)
#   scripts/check_format.sh --fix    rewrite files in place
#
# A missing clang-format is a hard error (exit 2, tool named), never a
# silent pass — a formatter that "skips" green is a formatter that rots.
# Set FB_FORMAT_ALLOW_MISSING=1 for dev containers that ship only g++;
# CI pins and installs clang-format explicitly and must never set it.
# Bulk-reformat commits belong in .git-blame-ignore-revs.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  if [[ "${FB_FORMAT_ALLOW_MISSING:-0}" == "1" ]]; then
    echo "check_format: clang-format not found; FB_FORMAT_ALLOW_MISSING=1 set, skipping" >&2
    exit 0
  fi
  echo "check_format: ERROR: required tool 'clang-format' not found on PATH" >&2
  echo "check_format: install it (apt-get install clang-format) or set FB_FORMAT_ALLOW_MISSING=1" >&2
  exit 2
fi

mapfile -t files < <(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' 'src/**/*.h' \
  'tests/*.cpp' 'bench/*.cpp' 'examples/*.cpp')

if [[ "${1:-}" == "--fix" ]]; then
  clang-format -i "${files[@]}"
  echo "check_format: reformatted ${#files[@]} files"
  exit 0
fi

bad=0
for f in "${files[@]}"; do
  if ! clang-format --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    bad=1
  fi
done

if [[ $bad -ne 0 ]]; then
  echo "check_format: run scripts/check_format.sh --fix" >&2
  exit 1
fi
echo "check_format: ${#files[@]} files clean"
