#!/usr/bin/env bash
# Checks that tracked C++ sources satisfy .clang-format.
#
#   scripts/check_format.sh          report violations (exit 1 if any)
#   scripts/check_format.sh --fix    rewrite files in place
#
# Skips gracefully when clang-format is not installed (the dev container
# ships only g++; CI installs clang-format via apt). Bulk-reformat
# commits belong in .git-blame-ignore-revs.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not found; skipping (install via apt to enable)" >&2
  exit 0
fi

mapfile -t files < <(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' 'src/**/*.h' \
  'tests/*.cpp' 'bench/*.cpp' 'examples/*.cpp')

if [[ "${1:-}" == "--fix" ]]; then
  clang-format -i "${files[@]}"
  echo "check_format: reformatted ${#files[@]} files"
  exit 0
fi

bad=0
for f in "${files[@]}"; do
  if ! clang-format --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    bad=1
  fi
done

if [[ $bad -ne 0 ]]; then
  echo "check_format: run scripts/check_format.sh --fix" >&2
  exit 1
fi
echo "check_format: ${#files[@]} files clean"
