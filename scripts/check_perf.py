#!/usr/bin/env python3
"""Perf guard for bench reports (dispatch pipeline, obs primitives).

Reads a bench JSON report (bench_dispatch, bench_obs, or bench_cluster
with quick=1 out=<file>) and compares it against the checked-in
baseline (bench/bench_baseline.json by default):

  * throughput_ips may not drop below baseline / FACTOR
  * p99_ms may not rise above baseline * FACTOR

FACTOR is 3x — deliberately generous, as with check_obs_overhead.py:
this guards against structural regressions (a lock on the admission
path, a lost batched wakeup turning into per-request notifies), not
micro-variance between machines. Baselines were recorded on a 1-vCPU
runner (the JSON records hardware_concurrency); faster hardware only
adds margin on the throughput floors.

Usage:
  check_perf.py <report.json> [--baseline <baseline.json>]
                [--prefix P ...] [--update]

Several benches share one baseline file, each owning a name prefix
(bench_dispatch: e2e/ and invoke_path/; bench_obs: obs/; bench_cluster:
cluster/). --prefix
restricts both checking and updating to cells whose name starts with
one of the given prefixes, so one bench's report is never held against
(or allowed to clobber) another bench's floors. Without --prefix every
baseline cell is checked.

--update rewrites the baseline from the current report instead of
checking (run on a quiet machine, then commit the result). Combined
with --prefix it merges: only matching cells are replaced, the rest of
the baseline file is preserved.
"""
import argparse
import json
import os
import sys

FACTOR = 3.0

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "bench", "bench_baseline.json")


def load_cells(path):
    with open(path) as f:
        report = json.load(f)
    cells = {}
    for bench in report.get("benchmarks", []):
        cells[bench["name"]] = bench
    return report, cells


def matches(name, prefixes):
    return not prefixes or any(name.startswith(p) for p in prefixes)


def update_baseline(report, cells, path, prefixes):
    baseline = {
        "comment": "perf floors for scripts/check_perf.py; regenerate with "
                   "bench_dispatch quick=1 out=d.json && check_perf.py d.json "
                   "--update --prefix e2e/ --prefix invoke_path/, "
                   "bench_obs quick=1 out=o.json && check_perf.py o.json "
                   "--update --prefix obs/, and "
                   "bench_cluster quick=1 out=c.json && check_perf.py c.json "
                   "--update --prefix cluster/",
        "hardware_concurrency": report.get("hardware_concurrency", 0),
        "benchmarks": {},
    }
    if prefixes and os.path.exists(path):
        # Merge: keep every cell this report does not own.
        with open(path) as f:
            existing = json.load(f)
        baseline["benchmarks"] = {
            name: entry for name, entry in existing.get("benchmarks", {}).items()
            if not matches(name, prefixes)}
    written = 0
    for name, cell in sorted(cells.items()):
        if not matches(name, prefixes):
            continue
        entry = {"throughput_ips": round(cell["throughput_ips"], 1)}
        if "p99_ms" in cell:
            entry["p99_ms"] = round(cell["p99_ms"], 3)
        baseline["benchmarks"][name] = entry
        written += 1
    baseline["benchmarks"] = dict(sorted(baseline["benchmarks"].items()))
    with open(path, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"wrote baseline ({written} cells updated, "
          f"{len(baseline['benchmarks'])} total) to {path}")
    return 0


def check(cells, baseline_path, prefixes):
    with open(baseline_path) as f:
        baseline = json.load(f)

    failures = []
    checked = 0
    for name, expect in baseline["benchmarks"].items():
        if not matches(name, prefixes):
            continue
        got = cells.get(name)
        if got is None:
            failures.append(f"missing benchmark cell {name}")
            continue
        floor = expect["throughput_ips"] / FACTOR
        if got["throughput_ips"] < floor:
            failures.append(
                f"{name}: throughput {got['throughput_ips']:.0f} inv/s < "
                f"floor {floor:.0f} (baseline {expect['throughput_ips']:.0f} "
                f"/ {FACTOR}x)")
        else:
            print(f"ok: {name} throughput {got['throughput_ips']:.0f} inv/s "
                  f"(floor {floor:.0f})")
            checked += 1
        if "p99_ms" in expect and "p99_ms" in got:
            ceiling = expect["p99_ms"] * FACTOR
            if got["p99_ms"] > ceiling:
                failures.append(
                    f"{name}: p99 {got['p99_ms']:.2f} ms > ceiling "
                    f"{ceiling:.2f} (baseline {expect['p99_ms']:.2f} "
                    f"* {FACTOR}x)")
            else:
                print(f"ok: {name} p99 {got['p99_ms']:.2f} ms "
                      f"(ceiling {ceiling:.2f})")
                checked += 1

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if checked == 0:
        print("FAIL: no baseline cells matched "
              f"prefixes {prefixes}", file=sys.stderr)
        return 1
    print(f"perf within bounds ({checked} checks)")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("report", help="bench JSON report (out=<file>)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--prefix", action="append", default=None,
                        help="only check/update baseline cells whose name "
                             "starts with this (repeatable)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this report")
    args = parser.parse_args()

    report, cells = load_cells(args.report)
    if not cells:
        print(f"FAIL: no benchmark cells in {args.report}", file=sys.stderr)
        return 1
    if args.update:
        return update_baseline(report, cells, args.baseline, args.prefix)
    return check(cells, args.baseline, args.prefix)


if __name__ == "__main__":
    sys.exit(main())
