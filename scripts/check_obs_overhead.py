#!/usr/bin/env python3
"""Overhead guard for the observability layer.

Reads a google-benchmark JSON report (bench_micro --benchmark_format=json)
and asserts:

  1. the disabled-path primitives (counter inc, histogram observe, trace
     instant) stay in the "one relaxed load + branch" regime, and
  2. a fully traced experiment stays within a small factor of the
     untraced baseline.

Thresholds are deliberately generous — this guards against accidental
regressions (a lock on the disabled path, an allocation per event), not
micro-variance between CI machines.

Usage: check_obs_overhead.py <benchmark.json>
"""
import json
import sys

# ns ceilings for disabled-path primitives. A relaxed atomic load and a
# branch is ~1 ns on any modern core; 50 ns means someone added real work.
DISABLED_NS_CEILING = {
    "BM_ObsDisabledCounterInc": 50.0,
    "BM_ObsDisabledHistogramObserve": 50.0,
    "BM_ObsDisabledInstant": 50.0,
    "BM_ObsDisabledFlightEvent": 50.0,
    "BM_ObsDisabledQuantileObserve": 50.0,
}

# ns ceilings for enabled-path hot primitives: recording must stay
# lock-free and allocation-free. Generous bounds — a flight event is six
# relaxed stores (~5-20 ns), a quantile record is a frexp plus three
# relaxed RMWs (~10-30 ns); hundreds of ns means a lock or an allocation
# crept in.
ENABLED_NS_CEILING = {
    "BM_ObsEnabledFlightEvent": 500.0,
    "BM_ObsEnabledQuantileObserve": 500.0,
}

# Traced full experiment must stay within this factor of untraced.
TRACED_FACTOR_CEILING = 3.0


def to_ns(value, unit):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    return value * scale[unit]


def main(path):
    with open(path) as f:
        report = json.load(f)
    times = {}
    for bench in report["benchmarks"]:
        if bench.get("run_type", "iteration") != "iteration":
            continue
        times[bench["name"]] = to_ns(bench["real_time"], bench["time_unit"])

    failures = []
    for ceilings in (DISABLED_NS_CEILING, ENABLED_NS_CEILING):
        for name, ceiling in ceilings.items():
            got = times.get(name)
            if got is None:
                failures.append(f"missing benchmark {name}")
            elif got > ceiling:
                failures.append(
                    f"{name}: {got:.1f} ns > {ceiling:.0f} ns ceiling")
            else:
                print(f"ok: {name} = {got:.1f} ns (ceiling {ceiling:.0f})")

    base = times.get("BM_FullExperimentFaasBatch")
    traced = times.get("BM_FullExperimentFaasBatchTraced")
    if base is None or traced is None:
        failures.append("missing full-experiment benchmark pair")
    else:
        factor = traced / base
        if factor > TRACED_FACTOR_CEILING:
            failures.append(
                f"traced experiment {factor:.2f}x untraced "
                f"(> {TRACED_FACTOR_CEILING}x ceiling)")
        else:
            print(f"ok: traced experiment {factor:.2f}x untraced "
                  f"(ceiling {TRACED_FACTOR_CEILING}x)")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        # Per-metric breakdown: when one ceiling blows, show every obs
        # primitive's measured time so the offending layer is obvious
        # without rerunning the bench locally.
        print("\nper-metric breakdown (all BM_Obs* cells):", file=sys.stderr)
        for name in sorted(times):
            if not name.startswith("BM_Obs"):
                continue
            ceiling = DISABLED_NS_CEILING.get(name) or ENABLED_NS_CEILING.get(name)
            bound = f" (ceiling {ceiling:.0f} ns)" if ceiling else ""
            print(f"  {name:40s} {times[name]:10.1f} ns{bound}",
                  file=sys.stderr)
        return 1
    print("observability overhead within bounds")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    sys.exit(main(sys.argv[1]))
