#!/usr/bin/env python3
"""Plot reproduced FaaSBatch figures from the bench JSON exports.

Usage:
    build/bench/bench_fig12_io_latency out=fig12.json
    python3 scripts/plot_figures.py fig12.json --out fig12.png

Produces the paper's CDF panels (scheduling / cold start / execution /
exec+queue) for the four schedulers. Requires matplotlib; everything
else in this repository is dependency-free, so this helper is optional.
"""
import argparse
import json
import sys

PANELS = [
    ("scheduling", "(a) scheduling latency"),
    ("cold_start", "(b) cold-start latency"),
    ("execution", "(c) execution latency"),
    ("exec_plus_queue", "(c') execution + queuing"),
]
ORDER = ["Vanilla", "Kraken", "SFS", "FaaSBatch"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_file", help="output of a fig bench with out=...")
    parser.add_argument("--out", default=None, help="PNG path (default: show)")
    args = parser.parse_args()

    try:
        import matplotlib

        matplotlib.use("Agg" if args.out else matplotlib.get_backend())
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib is required: pip install matplotlib", file=sys.stderr)
        return 1

    with open(args.json_file) as f:
        data = json.load(f)

    fig, axes = plt.subplots(1, len(PANELS), figsize=(5 * len(PANELS), 4))
    for ax, (component, title) in zip(axes, PANELS):
        for scheduler in ORDER:
            if scheduler not in data:
                continue
            series = data[scheduler]["latency_cdfs_ms"][component]
            xs = [max(point["ms"], 1e-3) for point in series]
            ys = [point["q"] for point in series]
            ax.plot(xs, ys, label=scheduler, marker=".", markersize=3)
        ax.set_xscale("log")
        ax.set_xlabel("latency (ms)")
        ax.set_ylabel("CDF")
        ax.set_title(title)
        ax.grid(True, which="both", alpha=0.3)
        ax.legend()
    fig.tight_layout()
    if args.out:
        fig.savefig(args.out, dpi=150)
        print(f"wrote {args.out}")
    else:
        plt.show()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
