#!/usr/bin/env python3
"""fb_lint — FaaSBatch repo-invariant linter.

The reproduction's determinism and comparability guarantees rest on
conventions no compiler checks. This tool machine-checks them as a ctest
and a CI job:

  raw-clock     Wall-clock and sleep primitives (steady_clock::now(),
                system_clock, sleep_for, clock_gettime, ...) are banned
                outside src/common/clock.* — all time flows through the
                injectable Clock so the differential harness and live
                tests stay deterministic.
  raw-rng       Stdlib randomness (std::random_device, rand(), mt19937,
                std::*_distribution — whose sequences are stdlib-
                dependent) is banned outside src/common/rng.* — all
                draws go through the seeded xoshiro Rng.
  layering      The module include-DAG declared in fb_lint.toml must
                hold: core/ and sim/ never see live/ or http/, common/
                includes nothing above itself, obs/ stays include-only
                (observer stays observer).
  naked-new     No raw `new`/`delete` expressions outside declared
                arena/pool files; ownership lives in smart pointers.
  span-balance  Every TraceRecorder::begin_span() in a translation unit
                is matched by an end_span() in the same unit, so traces
                cannot leak open 'B' events.

Rules, allowlists, and the layering table live in fb_lint.toml at the
repo root. Inline escapes:

  // fb-lint-allow(rule)        suppress `rule` on this line (or, when
                                the line holds only the comment, on the
                                next line)
  // fb-lint-allow-file(rule)   suppress `rule` for the whole file

Exit status: 0 clean, 1 violations, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import fnmatch
import re
import sys
from dataclasses import dataclass
from pathlib import Path

try:
    import tomllib
except ModuleNotFoundError:  # Python < 3.11
    tomllib = None

ALLOW_RE = re.compile(r"fb-lint-allow\(([^)]*)\)")
ALLOW_FILE_RE = re.compile(r"fb-lint-allow-file\(([^)]*)\)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')

# Tokens that read the wall clock or block on real time.
CLOCK_TOKENS = [
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bsteady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"), "std::chrono::high_resolution_clock"),
    (re.compile(r"\bclock_gettime\b"), "clock_gettime()"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday()"),
    (re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"), "time(nullptr)"),
    (re.compile(r"\bsleep_for\b"), "std::this_thread::sleep_for"),
    (re.compile(r"\bsleep_until\b"), "std::this_thread::sleep_until"),
    (re.compile(r"\busleep\s*\("), "usleep()"),
    (re.compile(r"\bnanosleep\s*\("), "nanosleep()"),
]

# Tokens that draw entropy or use stdlib-dependent random sequences.
RNG_TOKENS = [
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\bd?rand48\s*\("), "*rand48()"),
    (re.compile(r"\bmt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"\bdefault_random_engine\b"), "std::default_random_engine"),
    (re.compile(r"\bminstd_rand0?\b"), "std::minstd_rand"),
    (re.compile(r"\b\w+_distribution\s*<"), "std::*_distribution (stdlib-dependent sequence)"),
    (re.compile(r"#\s*include\s*<random>"), "#include <random>"),
]


@dataclass
class Violation:
    path: str
    line: int  # 1-based
    rule: str
    message: str


class SourceFile:
    """One scanned file: raw lines, comment/string-stripped lines, and
    the suppression sets parsed from its comments."""

    def __init__(self, rel_path: str, text: str):
        self.rel_path = rel_path
        self.raw_lines = text.splitlines()
        self.clean_lines = _strip_comments_and_strings(text).splitlines()
        self.file_allows: set[str] = set()
        self.line_allows: dict[int, set[str]] = {}  # 0-based line -> rules
        self._parse_suppressions()

    def _parse_suppressions(self) -> None:
        for i, raw in enumerate(self.raw_lines):
            for match in ALLOW_FILE_RE.finditer(raw):
                self.file_allows.update(_split_rules(match.group(1)))
            # fb-lint-allow-file( does not match ALLOW_RE (the "(" must
            # directly follow "allow"), so the two patterns are disjoint.
            rules = set()
            for match in ALLOW_RE.finditer(raw):
                rules.update(_split_rules(match.group(1)))
            if not rules:
                continue
            self.line_allows.setdefault(i, set()).update(rules)
            # A comment-only line shields the line below it.
            code = self.clean_lines[i].strip() if i < len(self.clean_lines) else ""
            if not code:
                self.line_allows.setdefault(i + 1, set()).update(rules)

    def allowed(self, rule: str, line_index: int) -> bool:
        if rule in self.file_allows:
            return True
        return rule in self.line_allows.get(line_index, set())


def _split_rules(spec: str) -> list[str]:
    return [r.strip() for r in spec.split(",") if r.strip()]


def _strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string literals, and char literals while
    preserving the line structure, so token rules only see code."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif c == '"':
            # Raw string literal R"delim( ... )delim"
            if i >= 1 and text[i - 1] == "R" and (i < 2 or not text[i - 2].isalnum()):
                m = re.match(r'"([^\s()\\]{0,16})\(', text[i:])
                if m:
                    closer = ")" + m.group(1) + '"'
                    end = text.find(closer, i)
                    end = n if end < 0 else end + len(closer)
                    out.extend("\n" for ch in text[i:end] if ch == "\n")
                    i = end
                    continue
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        elif c == "'":
            i += 1
            # Distinguish char literals from digit separators (1'000'000):
            # a digit separator is preceded by an alnum and followed by one.
            prev = text[i - 2] if i >= 2 else ""
            if prev.isalnum():
                continue  # digit separator; keep scanning normally
            while i < n and text[i] != "'":
                if text[i] == "\\":
                    i += 1
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------


def check_tokens(src: SourceFile, rule: str, tokens) -> list[Violation]:
    out = []
    for i, line in enumerate(src.clean_lines):
        for pattern, label in tokens:
            if pattern.search(line):
                out.append(
                    Violation(
                        src.rel_path,
                        i + 1,
                        rule,
                        f"{label} outside the {('clock' if rule == 'raw-clock' else 'rng')} "
                        f"funnel (src/common/{'clock' if rule == 'raw-clock' else 'rng'}.*)",
                    )
                )
    return out


def _module_lookup(segments: list[str], layering: dict[str, list[str]]) -> str:
    """Most specific declared module for a path: the longest declared
    prefix of `segments` joined with '/', e.g. src/live/dispatch/ resolves
    to "live/dispatch" when declared, else to its parent "live". The last
    segment may be a file stem, so a declared "obs/flight_recorder" carves
    the flight_recorder.{hpp,cpp} pair out of obs/ as its own module."""
    for k in range(len(segments), 0, -1):
        name = "/".join(segments[:k])
        if name in layering:
            return name
    return segments[0] if segments else ""


def _path_segments(parts: list[str]) -> list[str]:
    """Directory segments plus the final file stem ("a/b/c.hpp" ->
    ["a", "b", "c"]), the unit _module_lookup resolves over."""
    return parts[:-1] + [Path(parts[-1]).stem] if parts else []


def check_layering(src: SourceFile, layering: dict[str, list[str]]) -> list[Violation]:
    parts = Path(src.rel_path).parts
    if len(parts) < 3 or parts[0] != "src":
        return []  # only src/<module>/ files are constrained
    module = _module_lookup(_path_segments(list(parts[1:])), layering)
    out = []
    if module not in layering:
        out.append(
            Violation(
                src.rel_path,
                1,
                "layering",
                f"module 'src/{module}/' is not declared in fb_lint.toml [layering]",
            )
        )
        return out
    allowed = set(layering[module]) | {module}
    # Raw lines: comment/string stripping would blank the include path
    # itself. A commented-out include is harmless to match — the edge it
    # names was deliberate enough to write down.
    for i, line in enumerate(src.raw_lines):
        m = INCLUDE_RE.match(line)
        if not m or "/" not in m.group(1):
            continue
        target = _module_lookup(_path_segments(m.group(1).split("/")), layering)
        if target in allowed:
            continue
        if target in layering:
            out.append(
                Violation(
                    src.rel_path,
                    i + 1,
                    "layering",
                    f"src/{module}/ must not include \"{m.group(1)}\" "
                    f"({module} -> {target} violates the module DAG)",
                )
            )
        else:
            out.append(
                Violation(
                    src.rel_path,
                    i + 1,
                    "layering",
                    f"include \"{m.group(1)}\" targets module '{target}' "
                    f"which is not declared in fb_lint.toml [layering]",
                )
            )
    return out


NEW_RE = re.compile(r"\bnew\b")
DELETE_RE = re.compile(r"\bdelete\b")
DELETED_FN_RE = re.compile(r"=\s*delete\b")
OPERATOR_NEWDEL_RE = re.compile(r"\boperator\s+(?:new|delete)\s*(?:\[\s*\])?")


def check_naked_new(src: SourceFile) -> list[Violation]:
    out = []
    for i, line in enumerate(src.clean_lines):
        scrubbed = DELETED_FN_RE.sub("", OPERATOR_NEWDEL_RE.sub("", line))
        if NEW_RE.search(scrubbed):
            out.append(
                Violation(src.rel_path, i + 1, "naked-new",
                          "raw `new` expression; use make_unique/make_shared "
                          "or a declared arena/pool file")
            )
        if DELETE_RE.search(scrubbed):
            out.append(
                Violation(src.rel_path, i + 1, "naked-new",
                          "raw `delete` expression; ownership belongs in "
                          "smart pointers")
            )
    return out


BEGIN_SPAN_RE = re.compile(r"\bbegin_span\s*\(")
END_SPAN_RE = re.compile(r"\bend_span\s*\(")


def check_span_balance(src: SourceFile) -> list[Violation]:
    begins, ends, last_line = 0, 0, 1
    for i, line in enumerate(src.clean_lines):
        b = len(BEGIN_SPAN_RE.findall(line))
        e = len(END_SPAN_RE.findall(line))
        if b:
            last_line = i + 1
        begins += b
        ends += e
    if begins == ends:
        return []
    return [
        Violation(src.rel_path, last_line, "span-balance",
                  f"TraceRecorder begin_span/end_span unbalanced in this "
                  f"translation unit ({begins} begin vs {ends} end)")
    ]


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def rule_allowed_paths(config: dict, rule: str) -> list[str]:
    return config.get("rules", {}).get(rule, {}).get("allow", [])


def rule_enabled(config: dict, rule: str) -> bool:
    return config.get("rules", {}).get(rule, {}).get("enabled", True)


def path_matches(rel_path: str, globs: list[str]) -> bool:
    return any(fnmatch.fnmatch(rel_path, g) for g in globs)


def lint_file(root: Path, rel_path: str, config: dict) -> list[Violation]:
    text = (root / rel_path).read_text(encoding="utf-8", errors="replace")
    src = SourceFile(rel_path, text)
    violations: list[Violation] = []
    if rule_enabled(config, "raw-clock") and not path_matches(
        rel_path, rule_allowed_paths(config, "raw-clock")
    ):
        violations += check_tokens(src, "raw-clock", CLOCK_TOKENS)
    if rule_enabled(config, "raw-rng") and not path_matches(
        rel_path, rule_allowed_paths(config, "raw-rng")
    ):
        violations += check_tokens(src, "raw-rng", RNG_TOKENS)
    if rule_enabled(config, "layering"):
        violations += check_layering(src, config.get("layering", {}))
    if rule_enabled(config, "naked-new") and not path_matches(
        rel_path, rule_allowed_paths(config, "naked-new")
    ):
        violations += check_naked_new(src)
    if rule_enabled(config, "span-balance"):
        violations += check_span_balance(src)
    return [v for v in violations if not src.allowed(v.rule, v.line - 1)]


def collect_files(root: Path, config: dict) -> list[str]:
    roots = config.get("lint", {}).get("roots", ["src"])
    extensions = tuple(config.get("lint", {}).get("extensions", [".cpp", ".hpp", ".h", ".cc"]))
    files = []
    for top in roots:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.is_file() and path.suffix in extensions:
                files.append(path.relative_to(root).as_posix())
    return files


def load_config(path: Path) -> dict:
    if tomllib is None:
        print("fb_lint: Python >= 3.11 required (tomllib)", file=sys.stderr)
        raise SystemExit(2)
    try:
        with open(path, "rb") as f:
            return tomllib.load(f)
    except (OSError, tomllib.TOMLDecodeError) as e:
        print(f"fb_lint: cannot load config {path}: {e}", file=sys.stderr)
        raise SystemExit(2)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description="FaaSBatch repo-invariant linter")
    parser.add_argument("--root", default=".", help="repository root (default: cwd)")
    parser.add_argument("--config", default=None,
                        help="config file (default: <root>/fb_lint.toml)")
    parser.add_argument("--files", nargs="*", default=None,
                        help="lint only these paths (relative to --root)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line")
    args = parser.parse_args(argv)

    root = Path(args.root).resolve()
    config = load_config(Path(args.config) if args.config else root / "fb_lint.toml")

    files = args.files if args.files is not None else collect_files(root, config)
    violations: list[Violation] = []
    for rel_path in files:
        if not (root / rel_path).is_file():
            print(f"fb_lint: no such file: {rel_path}", file=sys.stderr)
            return 2
        violations += lint_file(root, rel_path, config)

    for v in violations:
        print(f"{v.path}:{v.line}: [{v.rule}] {v.message}")
    if not args.quiet:
        print(
            f"fb_lint: {len(files)} files, {len(violations)} violation(s)",
            file=sys.stderr,
        )
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
