#!/usr/bin/env python3
"""fb_lint — FaaSBatch repo-invariant linter.

The reproduction's determinism and comparability guarantees rest on
conventions no compiler checks. This tool machine-checks them as a ctest
and a CI job:

  raw-clock     Wall-clock and sleep primitives (steady_clock::now(),
                system_clock, sleep_for, clock_gettime, ...) are banned
                outside src/common/clock.* — all time flows through the
                injectable Clock so the differential harness and live
                tests stay deterministic.
  raw-rng       Stdlib randomness (std::random_device, rand(), mt19937,
                std::*_distribution — whose sequences are stdlib-
                dependent) is banned outside src/common/rng.* — all
                draws go through the seeded xoshiro Rng.
  layering      The module include-DAG declared in fb_lint.toml must
                hold: core/ and sim/ never see live/ or http/, common/
                includes nothing above itself, obs/ stays include-only
                (observer stays observer).
  naked-new     No raw `new`/`delete` expressions outside declared
                arena/pool files; ownership lives in smart pointers.
  span-balance  Every TraceRecorder::begin_span() in a translation unit
                is matched by an end_span() in the same unit, so traces
                cannot leak open 'B' events.
  atomic-order  Every std::atomic load/store/RMW names an explicit
                std::memory_order — implicit seq_cst defaults (including
                ++/--/+=/plain assignment on atomics) are flagged, and
                memory_order_relaxed is only accepted on atomics whose
                declaration carries the `fb-atomic-counter` tag (pure
                counters/flags that publish no other data).
  guarded-by    Any member field written inside a MutexLock/UniqueLock
                region in the same file pair must carry FB_GUARDED_BY on
                its declaration (std::atomic members are exempt), so new
                code cannot silently skip the thread-safety annotations.
  hot-path-blocking
                Functions listed in [rules.hot-path-blocking].functions
                (shard flush loops, worker pull loops) must not sleep,
                do stdio/file I/O, or call the heavyweight allocators.

An optional libclang-backed AST pass (fb_lint_ast.py, --ast=auto|require)
re-checks the atomics and hot-path families with real token streams; it
skips gracefully when python-clang is absent.

Rules, allowlists, and the layering table live in fb_lint.toml at the
repo root. Inline escapes:

  // fb-lint-allow(rule)        suppress `rule` on this line (or, when
                                the line holds only the comment, on the
                                next line)
  // fb-lint-allow-file(rule)   suppress `rule` for the whole file

Exit status: 0 clean, 1 violations, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import fnmatch
import re
import sys
from dataclasses import dataclass
from pathlib import Path

try:
    import tomllib
except ModuleNotFoundError:  # Python < 3.11
    tomllib = None

ALLOW_RE = re.compile(r"fb-lint-allow\(([^)]*)\)")
ALLOW_FILE_RE = re.compile(r"fb-lint-allow-file\(([^)]*)\)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')

# Tokens that read the wall clock or block on real time.
CLOCK_TOKENS = [
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bsteady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"), "std::chrono::high_resolution_clock"),
    (re.compile(r"\bclock_gettime\b"), "clock_gettime()"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday()"),
    (re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"), "time(nullptr)"),
    (re.compile(r"\bsleep_for\b"), "std::this_thread::sleep_for"),
    (re.compile(r"\bsleep_until\b"), "std::this_thread::sleep_until"),
    (re.compile(r"\busleep\s*\("), "usleep()"),
    (re.compile(r"\bnanosleep\s*\("), "nanosleep()"),
]

# Tokens that draw entropy or use stdlib-dependent random sequences.
RNG_TOKENS = [
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\bd?rand48\s*\("), "*rand48()"),
    (re.compile(r"\bmt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"\bdefault_random_engine\b"), "std::default_random_engine"),
    (re.compile(r"\bminstd_rand0?\b"), "std::minstd_rand"),
    (re.compile(r"\b\w+_distribution\s*<"), "std::*_distribution (stdlib-dependent sequence)"),
    (re.compile(r"#\s*include\s*<random>"), "#include <random>"),
]


@dataclass
class Violation:
    path: str
    line: int  # 1-based
    rule: str
    message: str


class SourceFile:
    """One scanned file: raw lines, comment/string-stripped lines, and
    the suppression sets parsed from its comments."""

    def __init__(self, rel_path: str, text: str):
        self.rel_path = rel_path
        self.raw_lines = text.splitlines()
        self.clean_lines = _strip_comments_and_strings(text).splitlines()
        self.file_allows: set[str] = set()
        self.line_allows: dict[int, set[str]] = {}  # 0-based line -> rules
        self._parse_suppressions()

    def _parse_suppressions(self) -> None:
        for i, raw in enumerate(self.raw_lines):
            for match in ALLOW_FILE_RE.finditer(raw):
                self.file_allows.update(_split_rules(match.group(1)))
            # fb-lint-allow-file( does not match ALLOW_RE (the "(" must
            # directly follow "allow"), so the two patterns are disjoint.
            rules = set()
            for match in ALLOW_RE.finditer(raw):
                rules.update(_split_rules(match.group(1)))
            if not rules:
                continue
            self.line_allows.setdefault(i, set()).update(rules)
            # A comment-only line shields the line below it.
            code = self.clean_lines[i].strip() if i < len(self.clean_lines) else ""
            if not code:
                self.line_allows.setdefault(i + 1, set()).update(rules)

    def allowed(self, rule: str, line_index: int) -> bool:
        if rule in self.file_allows:
            return True
        return rule in self.line_allows.get(line_index, set())


def _split_rules(spec: str) -> list[str]:
    return [r.strip() for r in spec.split(",") if r.strip()]


def _strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string literals, and char literals while
    preserving the line structure, so token rules only see code."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif c == '"':
            # Raw string literal R"delim( ... )delim"
            if i >= 1 and text[i - 1] == "R" and (i < 2 or not text[i - 2].isalnum()):
                m = re.match(r'"([^\s()\\]{0,16})\(', text[i:])
                if m:
                    closer = ")" + m.group(1) + '"'
                    end = text.find(closer, i)
                    end = n if end < 0 else end + len(closer)
                    out.extend("\n" for ch in text[i:end] if ch == "\n")
                    i = end
                    continue
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        elif c == "'":
            i += 1
            # Distinguish char literals from digit separators (1'000'000):
            # a digit separator is preceded by an alnum and followed by one.
            prev = text[i - 2] if i >= 2 else ""
            if prev.isalnum():
                continue  # digit separator; keep scanning normally
            while i < n and text[i] != "'":
                if text[i] == "\\":
                    i += 1
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------


def check_tokens(src: SourceFile, rule: str, tokens) -> list[Violation]:
    out = []
    for i, line in enumerate(src.clean_lines):
        for pattern, label in tokens:
            if pattern.search(line):
                out.append(
                    Violation(
                        src.rel_path,
                        i + 1,
                        rule,
                        f"{label} outside the {('clock' if rule == 'raw-clock' else 'rng')} "
                        f"funnel (src/common/{'clock' if rule == 'raw-clock' else 'rng'}.*)",
                    )
                )
    return out


def _module_lookup(segments: list[str], layering: dict[str, list[str]]) -> str:
    """Most specific declared module for a path: the longest declared
    prefix of `segments` joined with '/', e.g. src/live/dispatch/ resolves
    to "live/dispatch" when declared, else to its parent "live". The last
    segment may be a file stem, so a declared "obs/flight_recorder" carves
    the flight_recorder.{hpp,cpp} pair out of obs/ as its own module."""
    for k in range(len(segments), 0, -1):
        name = "/".join(segments[:k])
        if name in layering:
            return name
    return segments[0] if segments else ""


def _path_segments(parts: list[str]) -> list[str]:
    """Directory segments plus the final file stem ("a/b/c.hpp" ->
    ["a", "b", "c"]), the unit _module_lookup resolves over."""
    return parts[:-1] + [Path(parts[-1]).stem] if parts else []


def check_layering(src: SourceFile, layering: dict[str, list[str]]) -> list[Violation]:
    parts = Path(src.rel_path).parts
    if len(parts) < 3 or parts[0] != "src":
        return []  # only src/<module>/ files are constrained
    module = _module_lookup(_path_segments(list(parts[1:])), layering)
    out = []
    if module not in layering:
        out.append(
            Violation(
                src.rel_path,
                1,
                "layering",
                f"module 'src/{module}/' is not declared in fb_lint.toml [layering]",
            )
        )
        return out
    allowed = set(layering[module]) | {module}
    # Raw lines: comment/string stripping would blank the include path
    # itself. A commented-out include is harmless to match — the edge it
    # names was deliberate enough to write down.
    for i, line in enumerate(src.raw_lines):
        m = INCLUDE_RE.match(line)
        if not m or "/" not in m.group(1):
            continue
        target = _module_lookup(_path_segments(m.group(1).split("/")), layering)
        if target in allowed:
            continue
        if target in layering:
            out.append(
                Violation(
                    src.rel_path,
                    i + 1,
                    "layering",
                    f"src/{module}/ must not include \"{m.group(1)}\" "
                    f"({module} -> {target} violates the module DAG)",
                )
            )
        else:
            out.append(
                Violation(
                    src.rel_path,
                    i + 1,
                    "layering",
                    f"include \"{m.group(1)}\" targets module '{target}' "
                    f"which is not declared in fb_lint.toml [layering]",
                )
            )
    return out


NEW_RE = re.compile(r"\bnew\b")
DELETE_RE = re.compile(r"\bdelete\b")
DELETED_FN_RE = re.compile(r"=\s*delete\b")
OPERATOR_NEWDEL_RE = re.compile(r"\boperator\s+(?:new|delete)\s*(?:\[\s*\])?")


def check_naked_new(src: SourceFile) -> list[Violation]:
    out = []
    for i, line in enumerate(src.clean_lines):
        scrubbed = DELETED_FN_RE.sub("", OPERATOR_NEWDEL_RE.sub("", line))
        if NEW_RE.search(scrubbed):
            out.append(
                Violation(src.rel_path, i + 1, "naked-new",
                          "raw `new` expression; use make_unique/make_shared "
                          "or a declared arena/pool file")
            )
        if DELETE_RE.search(scrubbed):
            out.append(
                Violation(src.rel_path, i + 1, "naked-new",
                          "raw `delete` expression; ownership belongs in "
                          "smart pointers")
            )
    return out


BEGIN_SPAN_RE = re.compile(r"\bbegin_span\s*\(")
END_SPAN_RE = re.compile(r"\bend_span\s*\(")


def check_span_balance(src: SourceFile) -> list[Violation]:
    begins, ends, last_line = 0, 0, 1
    for i, line in enumerate(src.clean_lines):
        b = len(BEGIN_SPAN_RE.findall(line))
        e = len(END_SPAN_RE.findall(line))
        if b:
            last_line = i + 1
        begins += b
        ends += e
    if begins == ends:
        return []
    return [
        Violation(src.rel_path, last_line, "span-balance",
                  f"TraceRecorder begin_span/end_span unbalanced in this "
                  f"translation unit ({begins} begin vs {ends} end)")
    ]



# --------------------------------------------------------------------------
# atomic-order / guarded-by / hot-path-blocking (concurrency families)
# --------------------------------------------------------------------------

ATOMIC_DECL_RE = re.compile(r"\bstd::atomic\s*[<_]")
COUNTER_TAG = "fb-atomic-counter"
# Atomic member operations that take an optional std::memory_order.
ATOMIC_OPS = (
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_or",
    "fetch_and", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong", "wait", "notify_one", "notify_all",
)
ATOMIC_OP_RE = re.compile(
    r"\b(\w+)\s*(?:\.|->)\s*(load|store|exchange|fetch_add|fetch_sub|"
    r"fetch_or|fetch_and|fetch_xor|compare_exchange_weak|"
    r"compare_exchange_strong)\s*\(")
# ++x / x++ / x-- / --x / x += / x -= / x |= / x &= / x = (not ==)
ATOMIC_IMPLICIT_RES = [
    (re.compile(r"(?:\+\+|--)\s*(\w+)\b"), "prefix ++/--"),
    (re.compile(r"\b(\w+)\s*(?:\+\+|--)"), "postfix ++/--"),
    (re.compile(r"\b(\w+)\s*(?:\+=|-=|\|=|&=|\^=)"), "compound assignment"),
    (re.compile(r"\b(\w+)\s*=(?![=])"), "plain assignment"),
]


def _statements(text: str):
    """Yields (start_offset, statement_text) split on ';'."""
    start = 0
    for i, c in enumerate(text):
        if c == ";":
            yield start, text[start:i]
            start = i + 1
    if start < len(text):
        yield start, text[start:]


def _decl_name(stmt: str) -> str | None:
    """Declared identifier of a member/variable declaration statement:
    the last identifier before the initializer / array bound / end."""
    # Drop a trailing brace or '=' initializer, then take the final word.
    body = re.split(r"=(?![=])", stmt, maxsplit=1)[0]
    body = re.sub(r"\{[^{}]*\}\s*$", "", body)
    m = re.search(r"(\w+)\s*(?:\[[^\]]*\])?\s*$", body)
    return m.group(1) if m else None


def _line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


class AtomicRegistry:
    """Atomic declarations in a file pair: name -> counter-tagged?"""

    def __init__(self, texts: list[str]):
        self.tagged: dict[str, bool] = {}
        for raw in texts:
            lines = raw.splitlines()
            for off, stmt in _statements(raw):
                m = ATOMIC_DECL_RE.search(stmt)
                if not m:
                    continue
                # `std::atomic` inside an open paren group is a function
                # parameter (or alignas operand), not a declaration this
                # statement introduces.
                if stmt.count("(", 0, m.start()) > stmt.count(")", 0, m.start()):
                    continue
                name = _decl_name(stmt)
                if name is None:
                    continue
                tagged = COUNTER_TAG in stmt
                if not tagged:
                    # Trailing same-line comment: `... sum_{0};  // tag`
                    # falls after the ';' and thus into the next statement.
                    end_line = _line_of(raw, off + len(stmt)) - 1
                    if end_line < len(lines) and COUNTER_TAG in lines[end_line]:
                        tagged = True
                if not tagged:
                    # The tag may sit in a comment block above the
                    # declaration — or above a contiguous *group* of
                    # declarations it covers (cursor pairs and the like),
                    # so the upward scan also steps over sibling
                    # declaration lines.
                    first = _line_of(raw, off + len(stmt) - len(stmt.lstrip())) - 1
                    j = first - 1
                    while j >= 0:
                        s = lines[j].strip()
                        if s.startswith("//") or s.startswith("*") \
                                or s.startswith("/*"):
                            if COUNTER_TAG in lines[j]:
                                tagged = True
                                break
                            j -= 1
                        elif "std::atomic" in s:
                            j -= 1  # sibling of a shared comment block
                        else:
                            break
                self.tagged[name] = self.tagged.get(name, False) or tagged

    def knows(self, name: str) -> bool:
        return name in self.tagged

    def is_counter(self, name: str) -> bool:
        return self.tagged.get(name, False)


def _matching_paren(text: str, open_idx: int) -> int:
    """Offset of the ')' matching text[open_idx] == '(' (or len(text))."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(text)


def check_atomic_order(src: SourceFile, registry: AtomicRegistry) -> list[Violation]:
    text = "\n".join(src.clean_lines)
    out = []
    for m in ATOMIC_OP_RE.finditer(text):
        var, op = m.group(1), m.group(2)
        if not registry.knows(var):
            continue  # load()/store() on a non-atomic (e.g. ObjectStore)
        close = _matching_paren(text, m.end() - 1)
        args = text[m.end():close]
        line = _line_of(text, m.start())
        if op in ("wait", "notify_one", "notify_all"):
            continue  # futex-style members; no order parameter convention
        if "memory_order" not in args:
            out.append(Violation(
                src.rel_path, line, "atomic-order",
                f"std::atomic {op}() on '{var}' names no memory order "
                f"(implicit seq_cst); spell the order explicitly"))
        elif "memory_order_relaxed" in args and not registry.is_counter(var):
            out.append(Violation(
                src.rel_path, line, "atomic-order",
                f"memory_order_relaxed on '{var}', which is not tagged "
                f"fb-atomic-counter; tag the declaration if it is a pure "
                f"counter, or use acquire/release"))
    # Operator forms (++ / -- / += / =) are always implicit seq_cst.
    for off, stmt in _statements(text):
        if ATOMIC_DECL_RE.search(stmt):
            continue  # declaration initializers are not atomic RMWs
        for pattern, what in ATOMIC_IMPLICIT_RES:
            for m in pattern.finditer(stmt):
                var = m.group(1)
                if not registry.knows(var):
                    continue
                if what == "plain assignment":
                    # `std::size_t seq = ...` declares a *local* that
                    # shadows an atomic member name: a type token directly
                    # precedes the name.
                    before = stmt[:m.start(1)].rstrip()
                    if before and (before[-1].isalnum()
                                   or before[-1] in "_>&*"):
                        continue
                out.append(Violation(
                    src.rel_path, _line_of(text, off + m.start(1)),
                    "atomic-order",
                    f"{what} on std::atomic '{var}' is an implicit seq_cst "
                    f"operation; use an explicit fetch_/store with a named "
                    f"order"))
    return out


LOCK_REGION_RE = re.compile(r"\b(?:MutexLock|UniqueLock)\s+\w+\s*\(\s*(\w+)")
MUTATOR_METHODS = (
    "push_back|pop_back|pop_front|push_front|emplace|emplace_back|"
    "emplace_front|clear|erase|insert|swap|assign|resize|reserve")
WRITE_RES = [
    re.compile(r"(?:\+\+|--)\s*(\w+_)\b"),
    re.compile(r"\b(\w+_)\s*(?:\+\+|--)"),
    re.compile(r"\b(\w+_)\s*(?:=(?![=])|\+=|-=|\|=|&=)"),
    re.compile(r"\b(\w+_)\s*\.\s*(?:" + MUTATOR_METHODS + r")\s*\("),
    re.compile(r"\b(\w+_)\s*\.\s*\w+\s*(?:=(?![=])|\+=|-=|\+\+|--)"),
]


def _block_end(text: str, start: int) -> int:
    """End offset of the brace block containing `start` (the offset just
    after the lock declaration): scans until depth drops below zero."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth < 0:
                return i
    return len(text)


def check_guarded_by(src: SourceFile, pair_raw: str,
                     registry: AtomicRegistry) -> list[Violation]:
    text = "\n".join(src.clean_lines)
    out = []
    seen: set[tuple[str, int]] = set()
    for lock in LOCK_REGION_RE.finditer(text):
        mutex = lock.group(1)
        region = text[lock.end():_block_end(text, lock.end())]
        base = lock.end()
        for pattern in WRITE_RES:
            for m in pattern.finditer(region):
                name = m.group(1)
                if name == mutex or name.endswith("cv_"):
                    continue
                if registry.knows(name):
                    continue  # atomics are the other synchronisation story
                # Declared in this file pair at all? (Locals and members of
                # other objects are out of scope for a textual pass.)
                decl = re.search(
                    r"\b" + re.escape(name) + r"\s*(?:\[[^\]]*\])?\s*"
                    r"FB_GUARDED_BY\s*\(", pair_raw)
                if decl:
                    continue
                declared = re.search(
                    r"^[^\S\n]*(?:mutable\s+)?[A-Za-z_][\w:<>,\s\*&]*"
                    r"[\s&\*>]" + re.escape(name) +
                    r"\s*(?:\[[^\]]*\])?\s*(?:=(?![=])|\{|;)",
                    pair_raw, re.M)
                if not declared:
                    continue
                line = _line_of(text, base + m.start(1))
                if (name, line) in seen:
                    continue
                seen.add((name, line))
                out.append(Violation(
                    src.rel_path, line, "guarded-by",
                    f"'{name}' is written under {mutex} but its declaration "
                    f"carries no FB_GUARDED_BY({mutex}) annotation"))
    return out


# Calls that block or hit the allocator hard; banned inside declared
# hot-path functions (shard flush loops, worker pull loops).
HOT_PATH_TOKENS = [
    (re.compile(r"\bsleep_for\b"), "sleep_for"),
    (re.compile(r"\bsleep_until\b"), "sleep_until"),
    (re.compile(r"\busleep\s*\("), "usleep()"),
    (re.compile(r"\bnanosleep\s*\("), "nanosleep()"),
    (re.compile(r"\b(?:printf|fprintf|puts|fputs|fwrite|fread|fopen|fsync)\s*\("), "stdio call"),
    (re.compile(r"\bstd::(?:cout|cerr|clog)\b"), "iostream write"),
    (re.compile(r"\bstd::[io]?fstream\b"), "file stream"),
    (re.compile(r"\bsystem\s*\("), "system()"),
    (re.compile(r"\b(?:malloc|calloc|realloc)\s*\("), "raw allocator call"),
    (re.compile(r"\bstd::ostringstream\b"), "ostringstream (allocates)"),
]
IDENT_CHARS = re.compile(r"[\w:]")


def _function_body(text: str, name: str):
    """Yields (body_start, body_end) for each *definition* of `name`."""
    for m in re.finditer(r"\b" + re.escape(name) + r"\s*\(", text):
        close = _matching_paren(text, m.end() - 1)
        i = close + 1
        # Skip trailing specifiers/attributes: `const noexcept override
        # FB_EXCLUDES(mutex_)` etc., until '{' (definition) or anything
        # else (call site / declaration).
        while i < len(text):
            if text[i].isspace():
                i += 1
            elif IDENT_CHARS.match(text[i]):
                while i < len(text) and IDENT_CHARS.match(text[i]):
                    i += 1
            elif text[i] == "(":
                i = _matching_paren(text, i) + 1
            else:
                break
        if i >= len(text) or text[i] != "{":
            continue
        depth = 0
        for j in range(i, len(text)):
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
                if depth == 0:
                    yield i, j
                    break


def check_hot_path(src: SourceFile, functions: list[str]) -> list[Violation]:
    text = "\n".join(src.clean_lines)
    out = []
    for fn in functions:
        for start, end in _function_body(text, fn):
            body = text[start:end]
            for pattern, label in HOT_PATH_TOKENS:
                for m in pattern.finditer(body):
                    out.append(Violation(
                        src.rel_path, _line_of(text, start + m.start()),
                        "hot-path-blocking",
                        f"{label} inside hot-path function {fn}() — no "
                        f"sleeps, blocking I/O, or heavyweight allocation "
                        f"in flush/pull loops"))
    return out


def _companion_texts(root: Path, rel_path: str) -> list[str]:
    """Raw text of the file plus its header/source companion (atomics and
    annotations are declared in the .hpp, used in the .cpp)."""
    texts = [(root / rel_path).read_text(encoding="utf-8", errors="replace")]
    p = Path(rel_path)
    mates = {".cpp": [".hpp", ".h"], ".cc": [".hpp", ".h"],
             ".hpp": [".cpp", ".cc"], ".h": [".cpp", ".cc"]}.get(p.suffix, [])
    for ext in mates:
        mate = root / p.with_suffix(ext)
        if mate.is_file():
            texts.append(mate.read_text(encoding="utf-8", errors="replace"))
    return texts


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def rule_allowed_paths(config: dict, rule: str) -> list[str]:
    return config.get("rules", {}).get(rule, {}).get("allow", [])


def rule_applies(config: dict, rule: str, rel_path: str) -> bool:
    """Enabled, rel_path inside the rule's include globs (default:
    everywhere), and not allow-listed."""
    if not rule_enabled(config, rule):
        return False
    include = config.get("rules", {}).get(rule, {}).get("include", [])
    if include and not path_matches(rel_path, include):
        return False
    return not path_matches(rel_path, rule_allowed_paths(config, rule))


def rule_enabled(config: dict, rule: str) -> bool:
    return config.get("rules", {}).get(rule, {}).get("enabled", True)


def path_matches(rel_path: str, globs: list[str]) -> bool:
    return any(fnmatch.fnmatch(rel_path, g) for g in globs)


def lint_file(root: Path, rel_path: str, config: dict) -> list[Violation]:
    text = (root / rel_path).read_text(encoding="utf-8", errors="replace")
    src = SourceFile(rel_path, text)
    violations: list[Violation] = []
    if rule_enabled(config, "raw-clock") and not path_matches(
        rel_path, rule_allowed_paths(config, "raw-clock")
    ):
        violations += check_tokens(src, "raw-clock", CLOCK_TOKENS)
    if rule_enabled(config, "raw-rng") and not path_matches(
        rel_path, rule_allowed_paths(config, "raw-rng")
    ):
        violations += check_tokens(src, "raw-rng", RNG_TOKENS)
    if rule_enabled(config, "layering"):
        violations += check_layering(src, config.get("layering", {}))
    if rule_enabled(config, "naked-new") and not path_matches(
        rel_path, rule_allowed_paths(config, "naked-new")
    ):
        violations += check_naked_new(src)
    if rule_enabled(config, "span-balance"):
        violations += check_span_balance(src)
    needs_pair = (rule_applies(config, "atomic-order", rel_path)
                  or rule_applies(config, "guarded-by", rel_path))
    if needs_pair:
        pair = _companion_texts(root, rel_path)
        registry = AtomicRegistry(pair)
        if rule_applies(config, "atomic-order", rel_path):
            violations += check_atomic_order(src, registry)
        if rule_applies(config, "guarded-by", rel_path):
            violations += check_guarded_by(src, "\n".join(pair), registry)
    if rule_applies(config, "hot-path-blocking", rel_path):
        functions = config.get("rules", {}).get("hot-path-blocking", {}).get(
            "functions", [])
        violations += check_hot_path(src, functions)
    return [v for v in violations if not src.allowed(v.rule, v.line - 1)]


def collect_files(root: Path, config: dict) -> list[str]:
    roots = config.get("lint", {}).get("roots", ["src"])
    extensions = tuple(config.get("lint", {}).get("extensions", [".cpp", ".hpp", ".h", ".cc"]))
    files = []
    for top in roots:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.is_file() and path.suffix in extensions:
                files.append(path.relative_to(root).as_posix())
    return files


def load_config(path: Path) -> dict:
    if tomllib is None:
        print("fb_lint: Python >= 3.11 required (tomllib)", file=sys.stderr)
        raise SystemExit(2)
    try:
        with open(path, "rb") as f:
            return tomllib.load(f)
    except (OSError, tomllib.TOMLDecodeError) as e:
        print(f"fb_lint: cannot load config {path}: {e}", file=sys.stderr)
        raise SystemExit(2)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description="FaaSBatch repo-invariant linter")
    parser.add_argument("--root", default=".", help="repository root (default: cwd)")
    parser.add_argument("--config", default=None,
                        help="config file (default: <root>/fb_lint.toml)")
    parser.add_argument("--files", nargs="*", default=None,
                        help="lint only these paths (relative to --root)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line")
    parser.add_argument("--ast", choices=["off", "auto", "require"],
                        default="off",
                        help="run the libclang AST pass after the textual "
                             "rules: 'auto' skips gracefully when "
                             "python-clang is absent, 'require' fails")
    args = parser.parse_args(argv)

    root = Path(args.root).resolve()
    config = load_config(Path(args.config) if args.config else root / "fb_lint.toml")

    files = args.files if args.files is not None else collect_files(root, config)
    violations: list[Violation] = []
    for rel_path in files:
        if not (root / rel_path).is_file():
            print(f"fb_lint: no such file: {rel_path}", file=sys.stderr)
            return 2
        violations += lint_file(root, rel_path, config)

    if args.ast != "off":
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        import fb_lint_ast
        ast_violations, skip_reason = fb_lint_ast.run(
            root, files, config, violation_cls=Violation)
        if skip_reason is not None:
            print(f"fb_lint: AST pass skipped: {skip_reason}", file=sys.stderr)
            if args.ast == "require":
                print("fb_lint: --ast=require but libclang is unavailable",
                      file=sys.stderr)
                return 2
        violations += ast_violations

    for v in violations:
        print(f"{v.path}:{v.line}: [{v.rule}] {v.message}")
    if not args.quiet:
        print(
            f"fb_lint: {len(files)} files, {len(violations)} violation(s)",
            file=sys.stderr,
        )
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
