#!/usr/bin/env python3
"""Fixture-based self-test for fb_lint.

Runs the linter as a subprocess (the same way ctest and CI invoke it)
against fixtures/mini_repo — a miniature tree with one known-violation
file per rule plus allowlist / inline-suppression / clean files — and
asserts the exact (path, line, rule) set that must fire.
"""

from __future__ import annotations

import re
import subprocess
import sys
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
LINTER = HERE / "fb_lint.py"
FIXTURE_ROOT = HERE / "fixtures" / "mini_repo"

VIOLATION_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>[^\]]+)\]")

# Every violation the fixture tree must produce — nothing more, nothing
# less. Line numbers are pinned so comment/string stripping can't drift.
EXPECTED = {
    ("src/core/raw_clock.cpp", 8, "raw-clock"),
    ("src/core/raw_clock.cpp", 13, "raw-clock"),
    ("src/core/raw_rng.cpp", 2, "raw-rng"),
    ("src/core/raw_rng.cpp", 7, "raw-rng"),
    ("src/core/raw_rng.cpp", 8, "raw-rng"),
    ("src/core/raw_rng.cpp", 9, "raw-rng"),
    ("src/core/layering_violation.cpp", 4, "layering"),
    ("src/obs/observer_reaches_back.cpp", 3, "layering"),
    ("src/obs/ring.cpp", 5, "layering"),
    ("src/core/uses_ring.cpp", 3, "layering"),
    ("src/core/naked_new.cpp", 11, "naked-new"),
    ("src/core/naked_new.cpp", 15, "naked-new"),
    ("src/live/span_unbalanced.cpp", 8, "span-balance"),
    ("src/live/atomic_orders.cpp", 8, "atomic-order"),
    ("src/live/atomic_orders.cpp", 9, "atomic-order"),
    ("src/live/atomic_orders.cpp", 10, "atomic-order"),
    ("src/live/atomic_orders.cpp", 11, "atomic-order"),
    ("src/live/atomic_orders.cpp", 12, "atomic-order"),
    ("src/live/atomic_orders.cpp", 13, "atomic-order"),
    ("src/live/guarded_missing.cpp", 13, "guarded-by"),
    ("src/live/guarded_missing.cpp", 14, "guarded-by"),
    ("src/live/guarded_missing.cpp", 15, "guarded-by"),
    ("src/live/hot_loop.cpp", 11, "raw-clock"),
    ("src/live/hot_loop.cpp", 11, "hot-path-blocking"),
    ("src/live/hot_loop.cpp", 12, "hot-path-blocking"),
    ("src/live/hot_loop.cpp", 13, "hot-path-blocking"),
}

# Files whose would-be violations are neutralised by config allowlists or
# suppression comments; any hit from them is a regression.
MUST_BE_CLEAN = {
    "src/common/clock.cpp",
    "src/common/arena.cpp",
    "src/live/suppressed.cpp",
    "src/live/file_allow.cpp",
    "src/live/uses_ring.cpp",
    "src/live/atomic_ok.cpp",
    "src/live/guarded_ok.cpp",
    "tests/clean_test.cpp",
}


def run_lint(*extra_args: str) -> tuple[int, str, str]:
    proc = subprocess.run(
        [sys.executable, str(LINTER), "--root", str(FIXTURE_ROOT), *extra_args],
        capture_output=True,
        text=True,
    )
    return proc.returncode, proc.stdout, proc.stderr


def parse(stdout: str) -> set[tuple[str, int, str]]:
    out = set()
    for line in stdout.splitlines():
        m = VIOLATION_RE.match(line)
        if m:
            out.add((m.group("path"), int(m.group("line")), m.group("rule")))
    return out


class FixtureTreeTest(unittest.TestCase):
    """One full-tree run, shared across assertions."""

    @classmethod
    def setUpClass(cls):
        cls.code, cls.stdout, cls.stderr = run_lint()
        cls.found = parse(cls.stdout)

    def test_exit_code_signals_violations(self):
        self.assertEqual(self.code, 1, self.stdout + self.stderr)

    def test_exact_violation_set(self):
        self.assertEqual(self.found, EXPECTED,
                         f"missing: {EXPECTED - self.found}\n"
                         f"unexpected: {self.found - EXPECTED}")

    def test_each_rule_fires_at_least_once(self):
        fired = {rule for _, _, rule in self.found}
        self.assertEqual(
            fired, {"raw-clock", "raw-rng", "layering", "naked-new",
                    "span-balance", "atomic-order", "guarded-by",
                    "hot-path-blocking"})

    def test_allowlisted_and_suppressed_files_are_clean(self):
        dirty = {path for path, _, _ in self.found if path in MUST_BE_CLEAN}
        self.assertEqual(dirty, set(), self.stdout)

    def test_tokens_in_comments_and_strings_do_not_fire(self):
        # raw_clock.cpp mentions system_clock in a comment and a string;
        # only the two code lines may fire.
        hits = {(p, l) for p, l, r in self.found if p == "src/core/raw_clock.cpp"}
        self.assertEqual(hits, {("src/core/raw_clock.cpp", 8),
                                ("src/core/raw_clock.cpp", 13)})

    def test_deleted_functions_do_not_count_as_naked_new(self):
        hits = {l for p, l, r in self.found if p == "src/core/naked_new.cpp"}
        self.assertEqual(hits, {11, 15})

    def test_file_granular_modules_resolve_by_stem(self):
        # "obs/ring" is a declared file-module: its own file is bound by
        # its (empty) dependency list, including it requires the file
        # module itself to be listed, and a module that lists it is clean.
        self.assertIn(("src/obs/ring.cpp", 5, "layering"), self.found)
        self.assertIn(("src/core/uses_ring.cpp", 3, "layering"), self.found)
        self.assertNotIn("src/live/uses_ring.cpp",
                         {p for p, _, _ in self.found})


class ConcurrencyRuleTest(unittest.TestCase):
    """Shape assertions for the three concurrency families beyond the
    exact-set check: each positive/negative pairing in the fixture."""

    @classmethod
    def setUpClass(cls):
        cls.code, cls.stdout, cls.stderr = run_lint()
        cls.found = parse(cls.stdout)

    def test_atomic_implicit_and_relaxed_fire(self):
        hits = {l for p, l, r in self.found
                if p == "src/live/atomic_orders.cpp" and r == "atomic-order"}
        self.assertEqual(hits, {8, 9, 10, 11, 12, 13})

    def test_atomic_tags_shadows_and_escapes_stay_clean(self):
        # Group tag, trailing tag, explicit orders, a shadowing local
        # declaration, and an inline allow: all clean.
        self.assertNotIn("src/live/atomic_ok.cpp",
                         {p for p, _, _ in self.found})

    def test_guarded_by_flags_unannotated_writes_only(self):
        hits = {l for p, l, r in self.found
                if p == "src/live/guarded_missing.cpp"}
        self.assertEqual(hits, {13, 14, 15})
        # Annotated fields (same-line and continuation-line FB_GUARDED_BY)
        # and atomic members never fire.
        self.assertNotIn("src/live/guarded_ok.cpp",
                         {p for p, _, _ in self.found})

    def test_hot_path_scoped_to_declared_functions(self):
        hits = {l for p, l, r in self.found
                if p == "src/live/hot_loop.cpp" and r == "hot-path-blocking"}
        self.assertEqual(hits, {11, 12, 13})
        # cold_path (line 25) does stdio freely; worker_loop is clean.
        self.assertNotIn(25, {l for p, l, r in self.found
                              if p == "src/live/hot_loop.cpp"})


class AstPassTest(unittest.TestCase):
    def test_ast_auto_skips_gracefully_without_libclang(self):
        # With --ast=auto the run must succeed whether or not libclang is
        # installed; without it a skip notice lands on stderr.
        code, stdout, stderr = run_lint("--ast", "auto")
        self.assertEqual(code, 1, stdout + stderr)  # fixture violations
        try:
            import clang.cindex  # noqa: F401
            has_clang = True
        except ImportError:
            has_clang = False
        if not has_clang:
            self.assertIn("AST pass skipped", stderr)

    def test_ast_require_fails_without_libclang(self):
        try:
            import clang.cindex  # noqa: F401
            self.skipTest("libclang installed; require mode exercised in CI")
        except ImportError:
            pass
        code, _, stderr = run_lint("--ast", "require")
        self.assertEqual(code, 2)
        self.assertIn("--ast=require", stderr)

    def test_ast_pass_agrees_with_textual_rules(self):
        # Only meaningful where libclang is installed (CI lint job).
        try:
            import clang.cindex
            clang.cindex.Index.create()
        except Exception:
            self.skipTest("libclang unavailable")
        code, stdout, stderr = run_lint("--ast", "require")
        self.assertEqual(code, 1, stdout + stderr)
        found = parse(stdout)
        # The AST pass re-reports the implicit seq_cst member calls and
        # the hot-path tokens; duplicates with the textual pass are fine,
        # disagreement is not.
        self.assertIn(("src/live/atomic_orders.cpp", 8, "atomic-order"), found)
        self.assertIn(("src/live/hot_loop.cpp", 12, "hot-path-blocking"), found)


class CliTest(unittest.TestCase):
    def test_files_mode_limits_scope(self):
        code, stdout, _ = run_lint("--files", "src/core/raw_clock.cpp")
        self.assertEqual(code, 1)
        self.assertEqual({p for p, _, _ in parse(stdout)},
                         {"src/core/raw_clock.cpp"})

    def test_clean_subset_exits_zero(self):
        code, stdout, _ = run_lint("--files", "tests/clean_test.cpp", "-q")
        self.assertEqual(code, 0, stdout)
        self.assertEqual(stdout, "")

    def test_missing_file_is_usage_error(self):
        code, _, stderr = run_lint("--files", "src/core/nonexistent.cpp")
        self.assertEqual(code, 2)
        self.assertIn("no such file", stderr)

    def test_repo_config_loads(self):
        # Guard against the real fb_lint.toml going stale: it must parse
        # and declare every rule the fixture exercises.
        repo_root = HERE.parent.parent
        proc = subprocess.run(
            [sys.executable, str(LINTER), "--root", str(repo_root),
             "--files", "-q"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stderr)


if __name__ == "__main__":
    unittest.main()
