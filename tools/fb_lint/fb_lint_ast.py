#!/usr/bin/env python3
"""fb_lint AST pass — libclang-backed concurrency checks.

Re-checks two of fb_lint's textual rule families against real token
streams and cursor types, catching what line-oriented regexes cannot:

  atomic-order       member calls and overloaded operators (++ / -- /
                     += / plain assignment) resolved on a genuine
                     std::atomic<T> receiver, not a name that happens to
                     be called `load`; implicit seq_cst flagged even when
                     the call spans lines or hides behind `this->`.
  hot-path-blocking  banned calls located inside the *definition* extent
                     of declared hot-path functions, so a same-named
                     local lambda or shadowing call site cannot confuse
                     the region detection.

The pass is optional tooling: when python-clang / libclang is absent
(`import clang.cindex` fails or the shared library cannot load), run()
reports a skip reason instead of failing, and fb_lint --ast=auto carries
on with the textual verdict. CI installs libclang and runs with
--ast=require so the deep pass cannot silently rot.

Per-file parse errors are downgraded to warnings: an AST pass that dies
on one translation unit must not mask textual findings on the rest.
"""

from __future__ import annotations

import re
from pathlib import Path

ATOMIC_ORDER_OPS = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_or",
    "fetch_and", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong",
}
ATOMIC_OPERATORS = {
    "operator++", "operator--", "operator+=", "operator-=", "operator|=",
    "operator&=", "operator^=", "operator=",
}
ALLOW_RE = re.compile(r"fb-lint-allow\(([^)]*)\)")

# Mirrors fb_lint.HOT_PATH_TOKENS (kept in sync by the selftest).
HOT_PATH_CALLS = {
    "sleep_for", "sleep_until", "usleep", "nanosleep", "printf", "fprintf",
    "puts", "fputs", "fwrite", "fread", "fopen", "fsync", "system",
    "malloc", "calloc", "realloc",
}


def _load_clang():
    """Returns the clang.cindex module with a working libclang, or None."""
    try:
        from clang import cindex
    except ImportError:
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:  # library file missing or ABI mismatch
        candidates = []
        for pattern in ("libclang-*.so*", "libclang.so*"):
            for base in ("/usr/lib/llvm-14/lib", "/usr/lib/llvm-15/lib",
                         "/usr/lib/llvm-16/lib", "/usr/lib/llvm-17/lib",
                         "/usr/lib/llvm-18/lib", "/usr/lib/x86_64-linux-gnu",
                         "/usr/lib"):
                candidates += sorted(Path(base).glob(pattern))
        for lib in candidates:
            try:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(str(lib))
                cindex.Index.create()
                return cindex
            except Exception:
                continue
        return None


def _is_atomic_type(type_obj) -> bool:
    spelling = type_obj.get_canonical().spelling
    return "std::atomic" in spelling or spelling.startswith("_Atomic")


def _tokens_text(cindex, tu, extent) -> str:
    return " ".join(t.spelling for t in tu.get_tokens(extent=extent))


def _line_allows(path: Path) -> dict[int, set[str]]:
    """1-based line -> suppressed rules, honouring fb_lint's convention
    that a comment-only allow line shields the line below it."""
    allows: dict[int, set[str]] = {}
    try:
        lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
    except OSError:
        return allows
    for i, raw in enumerate(lines, start=1):
        rules = set()
        for m in ALLOW_RE.finditer(raw):
            rules.update(r.strip() for r in m.group(1).split(",") if r.strip())
        if not rules:
            continue
        allows.setdefault(i, set()).update(rules)
        if raw.strip().startswith("//"):
            allows.setdefault(i + 1, set()).update(rules)
    return allows


def _walk(cursor):
    yield cursor
    for child in cursor.get_children():
        yield from _walk(child)


def _check_tu(cindex, tu, rel_path: str, hot_functions: set[str],
              violation_cls) -> list:
    out = []
    main_file = str(tu.spelling)
    allows = _line_allows(Path(main_file))

    def emit(rule, line, message):
        if rule in allows.get(line, set()):
            return
        out.append(violation_cls(rel_path, line, rule, message))

    for cursor in _walk(tu.cursor):
        loc = cursor.location
        if loc.file is None or str(loc.file) != main_file:
            continue

        # -- atomic-order -------------------------------------------------
        if cursor.kind == cindex.CursorKind.CALL_EXPR:
            name = cursor.spelling
            children = list(cursor.get_children())
            receiver = children[0] if children else None
            receiver_atomic = (receiver is not None
                               and _is_atomic_type(receiver.type))
            if name in ATOMIC_ORDER_OPS and receiver_atomic:
                text = _tokens_text(cindex, tu, cursor.extent)
                if "memory_order" not in text:
                    emit("atomic-order", loc.line,
                         f"std::atomic {name}() names no memory order "
                         f"(implicit seq_cst)")
            elif name in ATOMIC_OPERATORS and receiver_atomic:
                emit("atomic-order", loc.line,
                     f"{name} on a std::atomic is an implicit seq_cst "
                     f"operation; use an explicit fetch_/store")

        # -- hot-path-blocking -------------------------------------------
        if (cursor.kind in (cindex.CursorKind.CXX_METHOD,
                            cindex.CursorKind.FUNCTION_DECL)
                and cursor.spelling in hot_functions
                and cursor.is_definition()):
            for node in _walk(cursor):
                if node.kind != cindex.CursorKind.CALL_EXPR:
                    continue
                callee = node.spelling
                if callee in HOT_PATH_CALLS:
                    emit("hot-path-blocking", node.location.line,
                         f"{callee}() inside hot-path function "
                         f"{cursor.spelling}() — no sleeps, blocking I/O, "
                         f"or heavyweight allocation in flush/pull loops")
    return out


def run(root: Path, files: list[str], config: dict,
        violation_cls) -> tuple[list, str | None]:
    """Runs the AST checks over `files`. Returns (violations, skip_reason);
    skip_reason is non-None when libclang is unavailable (pass skipped)."""
    cindex = _load_clang()
    if cindex is None:
        return [], "python3-clang / libclang not installed"

    hot = set(config.get("rules", {}).get("hot-path-blocking", {})
              .get("functions", []))
    compile_args = ["-x", "c++", "-std=c++17", f"-I{root / 'src'}",
                    f"-I{root}"]
    index = cindex.Index.create()
    violations = []
    for rel_path in files:
        if Path(rel_path).suffix not in (".cpp", ".cc", ".hpp", ".h"):
            continue
        ast_cfg = config.get("rules", {})
        for rule in ("atomic-order", "hot-path-blocking"):
            cfg = ast_cfg.get(rule, {})
            include = cfg.get("include", [])
            if cfg.get("enabled", True) and (
                    not include or _matches(rel_path, include)):
                break
        else:
            continue  # neither AST-backed rule applies to this file
        try:
            tu = index.parse(str(root / rel_path), args=compile_args)
            violations += _check_tu(cindex, tu, rel_path, hot, violation_cls)
        except Exception as e:  # one bad TU must not sink the pass
            import sys
            print(f"fb_lint_ast: warning: failed to parse {rel_path}: {e}",
                  file=sys.stderr)
    return violations, None


def _matches(rel_path: str, globs: list[str]) -> bool:
    import fnmatch
    return any(fnmatch.fnmatch(rel_path, g) for g in globs)
