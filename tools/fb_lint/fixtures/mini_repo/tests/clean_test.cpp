// A well-behaved test file: balanced spans, no banned tokens, smart
// pointers only. Must produce zero violations.
#include <memory>

#include "common/clock.hpp"
#include "obs/trace.hpp"

namespace fixture {

void traced(double ts) {
  obs::tracer().begin_span("test", "step", ts, 7);
  obs::tracer().end_span("test", "step", ts + 1, 7);
}

std::shared_ptr<int> owned() { return std::make_shared<int>(42); }

}  // namespace fixture
