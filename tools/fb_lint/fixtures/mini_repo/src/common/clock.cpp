// The clock funnel: the config allowlists this file, so raw clock reads
// here are legitimate and must not fire.
#include <chrono>

namespace fixture {

long funnel_now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
