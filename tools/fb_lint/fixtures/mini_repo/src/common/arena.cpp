// Declared arena file: the config allowlists naked-new here, so raw
// allocation in the arena implementation must not fire.
#include <cstddef>

namespace fixture {

char* arena_block(std::size_t n) {
  return new char[n];
}

void arena_release(char* p) {
  delete[] p;
}

}  // namespace fixture
