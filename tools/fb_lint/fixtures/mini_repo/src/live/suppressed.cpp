// Every would-be violation in this file carries a justified inline
// suppression, so the file must lint clean.
#include <chrono>

namespace fixture {

long paced_now() {
  // Real pacing for a live benchmark; intentionally reads the wall
  // clock even when the injectable Clock is virtual.
  return std::chrono::steady_clock::now()  // fb-lint-allow(raw-clock)
      .time_since_epoch()
      .count();
}

struct Node {
  Node* next = nullptr;
};

Node* pool_grow() {
  // Freelist node ownership is managed by the pool itself.
  // fb-lint-allow(naked-new)
  return new Node();
}

}  // namespace fixture
