// live lists "obs/ring" explicitly, so the same include is clean here.
#include "obs/ring.hpp"

namespace mini {
int live_uses_ring() { return 2; }
}  // namespace mini
