// Negative cases for atomic-order: everything here must stay clean.
#include <atomic>

class Stats {
 public:
  void hit() {
    // Tagged counters may use relaxed.
    hits_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    // Explicit non-relaxed orders are always fine.
    ready_.store(true, std::memory_order_release);
    (void)ready_.load(std::memory_order_acquire);
    // A local declaration that shadows an atomic member name is not an
    // atomic op.
    const unsigned ready = ready_.load(std::memory_order_acquire);
    (void)ready;
    // Deliberate escape with justification.
    // fb-lint-allow(atomic-order)
    ready_.store(false, std::memory_order_relaxed);
  }

 private:
  // Shared tag comment covers the contiguous declaration group.
  // fb-atomic-counter
  std::atomic<unsigned> hits_{0};
  std::atomic<unsigned> misses_{0};
  std::atomic<unsigned> total_{0};  // trailing tag form: fb-atomic-counter
  std::atomic<bool> ready_{false};
};
