// Negative cases for guarded-by: annotated fields, atomics, and locals
// must all stay clean.
#include <atomic>
#include <vector>

#include "common/ordered_mutex.hpp"

namespace fixture {

class Pool {
 public:
  void push(int v) {
    UniqueLock lock(mutex_);
    items_.push_back(v);
    depth_ = items_.size();
    // Atomics synchronise themselves; the lock is incidental.
    peak_.store(depth_, std::memory_order_release);
    // Locals (no trailing underscore / not declared in this pair) are
    // out of scope for the rule.
    int scratch = v;
    scratch += 1;
    (void)scratch;
  }

 private:
  Mutex mutex_;
  std::vector<int> items_ FB_GUARDED_BY(mutex_);
  // The annotation may sit on a continuation line.
  std::size_t depth_
      FB_GUARDED_BY(mutex_) = 0;
  std::atomic<std::size_t> peak_{0};
};

}  // namespace fixture
