// Positive cases for the atomic-order family: implicit seq_cst defaults
// and relaxed on an untagged atomic must all fire.
#include <atomic>

class Pipeline {
 public:
  void tick() {
    seq_.store(1);
    (void)seq_.load();
    pending_.fetch_add(1, std::memory_order_relaxed);
    ++seq_;
    seq_ = 7;
    pending_.compare_exchange_weak(expected_, 2);
  }

 private:
  std::atomic<unsigned> seq_{0};
  std::atomic<unsigned> pending_{0};
  unsigned expected_ = 0;
};
