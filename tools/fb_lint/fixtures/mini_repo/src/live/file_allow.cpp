// fb-lint-allow-file(raw-rng)
// Whole-file suppression: this calibration shim deliberately uses the
// stdlib engine to cross-check the in-repo xoshiro implementation.
#include <random>

namespace fixture {

int stdlib_draw(unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_int_distribution<int> dist(0, 10);
  return dist(gen);
}

}  // namespace fixture
