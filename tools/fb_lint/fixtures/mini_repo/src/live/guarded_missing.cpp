// Positive cases for guarded-by: members written under a held lock
// whose declarations carry no FB_GUARDED_BY must fire.
#include <deque>

#include "common/ordered_mutex.hpp"

namespace fixture {

class Ledger {
 public:
  void record(int v) {
    MutexLock lock(mutex_);
    ++count_;
    entries_.push_back(v);
    totals_.net = v;
  }

 private:
  Mutex mutex_;
  long count_ = 0;
  std::deque<int> entries_;
  struct Totals {
    int net = 0;
  };
  Totals totals_;
};

}  // namespace fixture
