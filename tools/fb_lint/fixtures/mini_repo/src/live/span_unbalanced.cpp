// Known-bad: a begin_span with no matching end_span in this TU leaks an
// open 'B' event into every exported trace.
#include "obs/trace.hpp"

namespace fixture {

void handle(double ts) {
  obs::tracer().begin_span("live", "request", ts, 1);  // line 8: span-balance
  // ... work happens, but the span is never closed ...
}

}  // namespace fixture
