// Positive + negative cases for hot-path-blocking. flush_loop and
// worker_loop are declared hot in the fixture fb_lint.toml; cold_path
// is not and may do whatever it likes. The sleep also trips raw-clock —
// the families compose.
#include <chrono>
#include <cstdio>
#include <thread>

struct Shard {
  void flush_loop() {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::fprintf(stderr, "tick\n");
    void* scratch = malloc(64);
    (void)scratch;
  }

  void worker_loop() {
    // Pull loop stays tight: no banned tokens here.
    for (int i = 0; i < 8; ++i) {
      work_ += i;
    }
  }

  void cold_path() {
    std::fprintf(stderr, "cold paths may log\n");
  }

  int work_ = 0;
};
