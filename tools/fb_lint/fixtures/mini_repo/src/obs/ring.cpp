// File-granular module "obs/ring": declared with no dependencies, so
// its self-include is fine but reaching into common/ is a layering
// violation even though the surrounding obs/ module allows common.
#include "obs/ring.hpp"
#include "common/clock.hpp"

namespace mini {
int ring_size() { return 64; }
}  // namespace mini
