// Known-bad: obs/ is include-only — the observer must not reach back
// into the platform (obs = [common] in the DAG).
#include "core/engine.hpp"  // line 3: layering (obs -> core)

namespace fixture {
int obs_fn() { return 2; }
}  // namespace fixture
