// core declares ["common", "obs"] — which no longer covers the
// file-granular "obs/ring" module: this include must fire layering.
#include "obs/ring.hpp"

namespace mini {
int core_uses_ring() { return 1; }
}  // namespace mini
