// Known-bad: core/ must never see live/ (the DAG declares
// core = [common, obs]).
#include "common/clock.hpp"  // fine: declared dependency
#include "live/live_platform.hpp"  // line 4: layering (core -> live)

namespace fixture {
int core_fn() { return 1; }
}  // namespace fixture
