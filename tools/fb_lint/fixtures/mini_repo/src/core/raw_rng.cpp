// Known-bad: stdlib randomness outside src/common/rng.*.
#include <random>  // line 2: raw-rng

namespace fixture {

int draw() {
  std::random_device rd;                           // line 7: raw-rng
  std::mt19937 gen(rd());                          // line 8: raw-rng
  std::uniform_int_distribution<int> dist(0, 10);  // line 9: raw-rng
  return dist(gen);
}

}  // namespace fixture
