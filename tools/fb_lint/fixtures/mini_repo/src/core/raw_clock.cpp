// Known-bad: reads the wall clock and sleeps outside src/common/clock.*.
#include <chrono>
#include <thread>

namespace fixture {

long now_ns() {
  auto t = std::chrono::steady_clock::now();  // line 8: raw-clock
  return t.time_since_epoch().count();
}

void nap() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // line 13: raw-clock
}

// A token inside a comment must NOT fire: system_clock::now().
const char* label() { return "system_clock in a string must not fire"; }

}  // namespace fixture
