// Known-bad: raw new/delete outside a declared arena/pool file.
#include <memory>

namespace fixture {

struct Widget {
  int x = 0;
};

Widget* make() {
  return new Widget();  // line 11: naked-new
}

void destroy(Widget* w) {
  delete w;  // line 15: naked-new
}

// Deleted functions and placement-free operator declarations must NOT
// fire — they are not allocation expressions.
struct NoCopy {
  NoCopy(const NoCopy&) = delete;
  void* operator new(std::size_t) = delete;
};

std::unique_ptr<Widget> make_ok() { return std::make_unique<Widget>(); }

}  // namespace fixture
